"""Ground-truth recovery gates: fixtures, verdicts, determinism, CLI.

The contract pinned here (the queue backend's acceptance criterion): every
incident fixture either recovers the incident-free NLP curve within
tolerance or surfaces an explicit regime/health warning. A clean bill of
health on a drifted curve — silent bias — fails the gate.
"""

import json
from types import SimpleNamespace

import numpy as np
import pytest

from repro.analysis.recovery import (
    RECOVERY_FIXTURES,
    RECOVERY_SCALES,
    VERDICT_EXPLAINED,
    VERDICT_RECOVERED,
    VERDICT_SILENT_BIAS,
    _paired_regime_findings,
    run_recovery,
    run_recovery_suite,
)
from repro.errors import ConfigError


def _fake_logs(latencies, times=None):
    latencies = np.asarray(latencies, dtype=float)
    if times is None:
        # Spread uniformly over a day so every hour-of-day slot is hit.
        times = np.linspace(0.0, 86400.0, latencies.size, endpoint=False)
    return SimpleNamespace(times=np.asarray(times, dtype=float),
                           latencies_ms=latencies)


class TestFixtureRegistry:
    def test_catalog_covers_every_incident_class(self):
        assert set(RECOVERY_FIXTURES) == {
            "load-spike", "slow-dependency", "regional-degradation",
            "autoscale-step", "retry-storm", "composite",
        }

    def test_fixtures_well_formed(self):
        for fixture in RECOVERY_FIXTURES.values():
            assert fixture.specs
            assert fixture.tolerance > 0
            assert fixture.compare_max_ms > 0

    def test_scenarios_differ_only_in_incidents(self):
        fixture = RECOVERY_FIXTURES["load-spike"]
        clean = fixture.scenario(7, "small", with_incidents=False)
        incident = fixture.scenario(7, "small", with_incidents=True)
        assert clean.config.latency_backend == "queue"
        assert incident.config.latency_backend == "queue"
        assert not clean.config.incident_plan.specs
        assert incident.config.incident_plan.specs == fixture.specs

    def test_unknown_scale_rejected(self):
        with pytest.raises(ConfigError):
            RECOVERY_FIXTURES["load-spike"].scenario(7, "huge", True)

    def test_unknown_fixture_rejected(self):
        with pytest.raises(ConfigError):
            run_recovery("no-such-fixture")

    def test_scales_defined(self):
        assert set(RECOVERY_SCALES) == {"small", "full"}


class TestPairedRegimeDetection:
    def test_identical_logs_not_flagged(self):
        rng = np.random.default_rng(0)
        latencies = rng.lognormal(np.log(200.0), 0.4, size=20_000)
        logs = _fake_logs(latencies)
        findings = _paired_regime_findings(logs, logs)
        assert all(f["severity"] == "ok" for f in findings)
        assert all("clean_baseline" in f["context"] for f in findings)

    def test_window_contamination_flagged(self):
        rng = np.random.default_rng(1)
        latencies = rng.lognormal(np.log(200.0), 0.4, size=20_000)
        clean = _fake_logs(latencies)
        contaminated = latencies.copy()
        # A two-hour incident: 8x latency for samples in hours 10-12.
        hours = (clean.times // 3600) % 24
        window = (hours >= 10) & (hours < 12)
        contaminated[window] *= 8.0
        findings = _paired_regime_findings(clean, _fake_logs(contaminated))
        assert any(f["severity"] != "ok" for f in findings)

    def test_tiny_logs_fall_back_without_raising(self):
        tiny = _fake_logs([100.0, 200.0, 300.0])
        findings = _paired_regime_findings(tiny, tiny)
        assert findings  # unpaired fallback still reports something
        assert all("severity" in f for f in findings)


class TestRecoveryRun:
    @pytest.fixture(scope="class")
    def autoscale_outcome(self):
        return run_recovery("autoscale-step", seed=7, scale="small")

    def test_mild_incident_recovers(self, autoscale_outcome):
        outcome = autoscale_outcome
        assert outcome.verdict == VERDICT_RECOVERED
        assert outcome.gate_passed
        assert outcome.max_abs_nlp_diff <= outcome.tolerance
        assert outcome.n_compared_bins > 0

    def test_ground_truth_windows_annotated(self, autoscale_outcome):
        windows = autoscale_outcome.incident_windows
        assert len(windows) == 1
        assert windows[0]["scenario"] == "autoscale-step"
        assert windows[0]["end_s"] > windows[0]["start_s"]

    def test_outcome_serializes(self, autoscale_outcome):
        payload = autoscale_outcome.to_dict()
        assert payload["schema"] == "autosens.recovery/v1"
        assert payload["verdict"] in (
            VERDICT_RECOVERED, VERDICT_EXPLAINED, VERDICT_SILENT_BIAS)
        json.dumps(payload)  # JSON-stable, no numpy leakage

    def test_severe_incident_recovers_or_warns(self):
        # slow-dependency drifts well past tolerance; the paired regime
        # probe must catch it — never a silent clean-but-biased verdict.
        outcome = run_recovery("slow-dependency", seed=7, scale="small")
        assert outcome.verdict == VERDICT_EXPLAINED
        assert outcome.gate_passed
        flagged = [f for f in outcome.regime if f["severity"] != "ok"]
        assert flagged

    def test_serial_process_bit_identical(self):
        serial = run_recovery("autoscale-step", seed=7, scale="small",
                              executor="serial")
        process = run_recovery("autoscale-step", seed=7, scale="small",
                               executor="process")
        a, b = serial.to_dict(), process.to_dict()
        a.pop("executor"), b.pop("executor")
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
        assert np.array_equal(serial.curve.nlp, process.curve.nlp,
                              equal_nan=True)


class TestRecoverySuite:
    def test_suite_writes_diffable_artifacts(self, tmp_path):
        outcomes = run_recovery_suite(
            ["autoscale-step"], seed=7, scale="small", out_dir=tmp_path)
        assert set(outcomes) == {"autoscale-step"}
        curve_path = tmp_path / "autoscale-step.curve.json"
        verdict_path = tmp_path / "autoscale-step.recovery.json"
        summary_path = tmp_path / "summary.json"
        assert curve_path.exists() and verdict_path.exists()
        summary = json.loads(summary_path.read_text())
        assert summary["gate_passed"] is True
        assert summary["fixtures"]["autoscale-step"]["verdict"] == VERDICT_RECOVERED

        # The curve artifact is obs-diff compatible and self-diffs clean.
        from repro.obs import diff_paths, diff_exit_code

        report = diff_paths(curve_path, curve_path)
        assert report["kind"] == "curve"
        assert diff_exit_code(report) == 0


class TestRecoverCLI:
    def test_unknown_fixture_exits_2(self, capsys):
        from repro.cli.main import main

        assert main(["recover", "no-such-fixture"]) == 2

    def test_baseline_dir_requires_out_dir(self):
        from repro.cli.main import main

        assert main(["recover", "autoscale-step",
                     "--baseline-dir", "/tmp/nowhere"]) == 2

    def test_single_fixture_gate_passes(self, tmp_path, capsys):
        from repro.cli.main import main

        out_dir = tmp_path / "run"
        assert main(["recover", "autoscale-step",
                     "--out-dir", str(out_dir)]) == 0
        captured = capsys.readouterr()
        assert "recovery gate: PASS" in captured.out
        # Second run gates cleanly against the first as baseline
        # (deterministic: the curves are byte-identical).
        cand = tmp_path / "cand"
        assert main(["recover", "autoscale-step", "--out-dir", str(cand),
                     "--baseline-dir", str(out_dir)]) == 0
        assert "no baseline drift" in capsys.readouterr().out

    def test_missing_baseline_fails_gate(self, tmp_path, capsys):
        from repro.cli.main import main

        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["recover", "autoscale-step",
                     "--out-dir", str(tmp_path / "out"),
                     "--baseline-dir", str(empty)]) == 1
        assert "FAIL" in capsys.readouterr().out
