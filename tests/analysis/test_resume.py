"""Checkpoint/resume semantics of the experiment runner.

The acceptance contract: a ``run_experiment`` killed mid-run and re-run
with the same checkpoint directory produces an outcome bit-identical to a
run that was never interrupted — and re-runs skip work already journaled.
"""

import pytest

from repro.analysis.base import SMALL, ExperimentOutcome
from repro.analysis.experiments import EXPERIMENTS, run_experiment
from repro.errors import ConfigError
from repro.parallel import resolve_executor
from repro.stats.rng import RngFactory

# Module-level task functions: stable __qualname__ gives stable journal
# keys across runs, exactly like the real sweep tasks.
_double_calls = []
_noise_calls = []


def _double(x):
    _double_calls.append(x)
    return x * 2


def _seeded_noise(payload):
    seed, name = payload
    _noise_calls.append(name)
    return float(RngFactory(seed).stream(name).normal())


def _two_sweep_driver(seed=0, scale=SMALL, executor=None):
    """A miniature experiment: two executor fan-outs, then an outcome."""
    ex = resolve_executor(executor)
    doubled = ex.map_ordered(_double, list(range(4)))
    noise = ex.map_ordered(
        _seeded_noise, [(seed, f"task/{i}") for i in range(4)]
    )
    outcome = ExperimentOutcome(experiment_id="mini", title="mini")
    outcome.notes.append(repr(doubled))
    outcome.notes.append(repr(noise))
    return outcome


class _DiesAfter:
    """An inner executor that dies (non-retryable) after N map calls."""

    def __init__(self, allowed_calls):
        self.remaining = allowed_calls

    def map_ordered(self, fn, items, chunk_size=None):
        if self.remaining <= 0:
            raise KeyboardInterrupt
        self.remaining -= 1
        return [fn(item) for item in items]


@pytest.fixture(autouse=True)
def _mini_experiment(monkeypatch):
    monkeypatch.setitem(EXPERIMENTS, "mini", _two_sweep_driver)
    _double_calls.clear()
    _noise_calls.clear()


class TestRunExperimentCheckpoint:
    def test_unknown_id_still_rejected(self):
        with pytest.raises(ConfigError):
            run_experiment("not-an-experiment")

    def test_completed_outcome_served_from_journal(self, tmp_path):
        first = run_experiment("mini", seed=3, scale="small",
                               checkpoint_dir=tmp_path)
        assert len(_double_calls) == 4
        second = run_experiment("mini", seed=3, scale="small",
                                checkpoint_dir=tmp_path)
        # The driver did not run again: the outcome came off disk.
        assert len(_double_calls) == 4
        assert second.notes == first.notes

    def test_different_seed_is_a_different_journal_entry(self, tmp_path):
        a = run_experiment("mini", seed=1, scale="small", checkpoint_dir=tmp_path)
        b = run_experiment("mini", seed=2, scale="small", checkpoint_dir=tmp_path)
        assert a.notes[0] == b.notes[0]      # deterministic part
        assert a.notes[1] != b.notes[1]      # seeded part differs

    def test_interrupted_run_resumes_bit_identical(self, tmp_path):
        # Reference: an uninterrupted run into its own journal.
        reference = run_experiment("mini", seed=7, scale="small",
                                   checkpoint_dir=tmp_path / "ref")
        _double_calls.clear()
        _noise_calls.clear()

        # Interrupted run: the inner backend dies after the first sweep.
        with pytest.raises(KeyboardInterrupt):
            run_experiment("mini", seed=7, scale="small",
                           checkpoint_dir=tmp_path / "ckpt",
                           executor=_DiesAfter(allowed_calls=1))
        assert len(_double_calls) == 4   # first sweep finished...
        assert _noise_calls == []        # ...second never started

        # Resume: first sweep is served from the journal, only the second
        # sweep's tasks actually run.
        resumed = run_experiment("mini", seed=7, scale="small",
                                 checkpoint_dir=tmp_path / "ckpt")
        assert len(_double_calls) == 4
        assert len(_noise_calls) == 4
        assert resumed.notes == reference.notes

    def test_no_checkpoint_dir_means_no_journal(self, tmp_path):
        run_experiment("mini", seed=3, scale="small")
        run_experiment("mini", seed=3, scale="small")
        assert len(_double_calls) == 8  # both runs computed everything
        assert not list(tmp_path.iterdir())
