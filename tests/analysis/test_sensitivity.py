"""Sensitivity suite: fixtures, verdicts, determinism, artifacts, CLI.

The contract pinned here: every frontier cell either stays within
tolerance of its clean same-seed twin (``robust``) or degrades *loudly*
(``degraded-explained`` — a probe finding, a health warning, or a typed
refusal). A drifted curve with a clean bill of health — ``silent-bias`` —
fails the gate. Frontier artifacts are a pure function of
``(fixture, scenario, seed, scale)``: byte-identical across executors
and reruns.
"""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.analysis.sensitivity import (
    DEFAULT_SENSITIVITY_NAMES,
    SENSITIVITY_FIXTURES,
    SENSITIVITY_SCHEMA,
    VERDICT_EXPLAINED,
    VERDICT_ROBUST,
    VERDICT_SILENT_BIAS,
    SensitivityFixture,
    run_sensitivity,
    run_sensitivity_suite,
)
from repro.errors import ConfigError

GOLDEN_DIR = Path(__file__).parent / "golden" / "sensitivity"


@pytest.fixture(scope="module")
def default_suite(tmp_path_factory):
    """The default matrix, run once for the whole module."""
    out_dir = tmp_path_factory.mktemp("sensitivity")
    outcomes = run_sensitivity_suite(out_dir=out_dir)
    return outcomes, out_dir


class TestFixtureRegistry:
    def test_catalog_covers_every_operator_family(self):
        assert set(SENSITIVITY_FIXTURES) == {
            "diurnal-thinning", "mnar-latency", "user-skew-mild",
            "subsample-events", "subsample-users", "subsample-time",
            "user-skew-heavy",
        }

    def test_default_matrix_excludes_the_silent_demo(self):
        assert "user-skew-heavy" not in DEFAULT_SENSITIVITY_NAMES
        assert set(DEFAULT_SENSITIVITY_NAMES) == set(SENSITIVITY_FIXTURES) - {
            "user-skew-heavy"
        }

    def test_fixtures_well_formed(self):
        for fixture in SENSITIVITY_FIXTURES.values():
            assert fixture.levels
            assert fixture.tolerance > 0
            assert fixture.compare_max_ms > 0

    def test_subsample_fixture_maps_to_policy(self):
        policy = SENSITIVITY_FIXTURES["subsample-users"].subsample_policy(0.25)
        assert policy.user_fraction == 0.25
        assert policy.event_fraction == 1.0
        assert policy.time_fraction == 1.0

    def test_bad_kind_and_operator_rejected(self):
        with pytest.raises(ConfigError):
            SensitivityFixture(name="x", description="", kind="mangle",
                               operator="diurnal-thinning", levels=(0.5,))
        with pytest.raises(ConfigError):
            SensitivityFixture(name="x", description="", kind="degrade",
                               operator="no-such-op", levels=(0.5,))
        with pytest.raises(ConfigError):
            SensitivityFixture(name="x", description="", kind="degrade",
                               operator="mnar-latency", levels=())

    def test_unknown_fixture_name_rejected(self):
        with pytest.raises(ConfigError):
            run_sensitivity("no-such-fixture")

    def test_unknown_scenario_and_scale_rejected(self):
        with pytest.raises(ConfigError):
            run_sensitivity("user-skew-mild", scenario="no-such-scenario")
        with pytest.raises(ConfigError):
            run_sensitivity("user-skew-mild", scale="no-such-scale")


class TestCleanTwinInvariance:
    def test_zero_level_degrade_cell_is_exactly_clean(self):
        # Level zero is the identity, the engine seed is shared: the cell
        # IS the clean twin, so the bias is exactly zero — not just small.
        fixture = SensitivityFixture(
            name="zero", description="identity ladder", kind="degrade",
            operator="diurnal-thinning", levels=(0.0,),
        )
        outcome = run_sensitivity(fixture)
        (cell,) = outcome.cells
        assert cell["verdict"] == VERDICT_ROBUST
        assert cell["bias_linf"] == 0.0
        assert cell["bias_signed_area"] == 0.0
        assert cell["ci_band_inflation"] == 1.0
        assert cell["n_compared_bins"] > 0
        assert cell["n_actions"] == outcome.clean["n_actions"]

    def test_full_fraction_subsample_cell_is_exactly_clean(self):
        # All fractions at 1.0 deactivate the in-engine hook entirely.
        fixture = SensitivityFixture(
            name="full", description="identity fractions", kind="subsample",
            operator="event", levels=(1.0,),
        )
        outcome = run_sensitivity(fixture)
        (cell,) = outcome.cells
        assert cell["verdict"] == VERDICT_ROBUST
        assert cell["bias_linf"] == 0.0
        assert cell["ci_band_inflation"] == 1.0


class TestExecutorEquivalence:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_process_frontier_bit_identical_to_serial(self, tmp_path,
                                                      workers):
        serial_dir = tmp_path / "serial"
        proc_dir = tmp_path / f"proc{workers}"
        run_sensitivity_suite(["user-skew-mild"], executor="serial",
                              out_dir=serial_dir)
        run_sensitivity_suite(["user-skew-mild"], executor=workers,
                              out_dir=proc_dir)
        name = "user-skew-mild.frontier.json"
        assert ((serial_dir / name).read_text()
                == (proc_dir / name).read_text())
        assert ((serial_dir / "summary.json").read_text()
                == (proc_dir / "summary.json").read_text())


class TestSuiteArtifacts:
    def test_default_matrix_gates_green_with_all_verdict_classes(
            self, default_suite):
        outcomes, _ = default_suite
        verdicts = {c["verdict"] for o in outcomes.values()
                    for c in o.cells}
        assert VERDICT_ROBUST in verdicts          # user-skew-mild
        assert VERDICT_EXPLAINED in verdicts       # thinning/MNAR/subsample
        assert VERDICT_SILENT_BIAS not in verdicts
        assert all(o.gate_passed for o in outcomes.values())

    def test_every_nonclean_cell_is_loud_or_robust(self, default_suite):
        outcomes, _ = default_suite
        for outcome in outcomes.values():
            for cell in outcome.cells:
                if cell["verdict"] == VERDICT_ROBUST:
                    continue
                loud = (
                    any(f["severity"] != "ok" for f in cell["probes"])
                    or cell["error"] is not None
                    or cell["health"]["verdict"] != "ok"
                    or cell["health"]["counts"]["warn"] > 0
                )
                assert loud, (outcome.fixture, cell["level"])

    def test_artifacts_self_diff_clean(self, default_suite):
        from repro.obs import diff_exit_code, diff_paths

        _, out_dir = default_suite
        frontier = out_dir / "diurnal-thinning.frontier.json"
        assert frontier.exists()
        report = diff_paths(frontier, frontier)
        assert report["kind"] == "sensitivity"
        assert diff_exit_code(report) == 0
        assert all(e["classification"] == "unchanged"
                   for e in report["entries"])

    def test_summary_mirrors_outcomes(self, default_suite):
        outcomes, out_dir = default_suite
        summary = json.loads((out_dir / "summary.json").read_text())
        assert summary["schema"] == SENSITIVITY_SCHEMA
        assert summary["gate_passed"] is True
        assert set(summary["fixtures"]) == set(outcomes)
        # Wall-clock lives only in the ungated sidecar.
        assert "executor" not in summary
        timings = json.loads((out_dir / "timings.json").read_text())
        assert timings["executor"] == "serial"

    def test_silent_bias_demo_fails_the_gate(self):
        outcome = run_sensitivity("user-skew-heavy")
        (cell,) = outcome.cells
        assert cell["verdict"] == VERDICT_SILENT_BIAS
        assert cell["gate_passed"] is False
        assert outcome.gate_passed is False
        # Silent means silent: every probe quiet, health clean.
        assert all(f["severity"] == "ok" for f in cell["probes"])
        assert cell["health"]["verdict"] == "ok"


class TestValidatorAgreement:
    """tools/validate_obs.py inlines the schema constants; pin them here."""

    @pytest.fixture(scope="class")
    def validator(self):
        path = (Path(__file__).resolve().parents[2]
                / "tools" / "validate_obs.py")
        spec = importlib.util.spec_from_file_location("validate_obs", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_inlined_constants_match(self, validator):
        assert validator.SENSITIVITY_SCHEMA == SENSITIVITY_SCHEMA
        assert set(validator.SENSITIVITY_VERDICTS) == {
            VERDICT_ROBUST, VERDICT_EXPLAINED, VERDICT_SILENT_BIAS,
        }

    def test_validator_accepts_fresh_frontiers(self, validator,
                                               default_suite):
        _, out_dir = default_suite
        for frontier in sorted(out_dir.glob("*.frontier.json")):
            assert validator._validate_sensitivity(frontier) == []

    def test_validator_rejects_gate_inconsistency(self, validator, tmp_path,
                                                  default_suite):
        _, out_dir = default_suite
        payload = json.loads(
            (out_dir / "diurnal-thinning.frontier.json").read_text())
        payload["cells"][0]["gate_passed"] = False  # verdict says passed
        bad = tmp_path / "bad.frontier.json"
        bad.write_text(json.dumps(payload))
        assert validator._validate_sensitivity(bad)


class TestGoldens:
    def test_committed_goldens_cover_every_verdict_class(self):
        frontiers = sorted(GOLDEN_DIR.glob("*.frontier.json"))
        assert frontiers, f"no committed goldens in {GOLDEN_DIR}"
        verdicts = set()
        gates = {}
        for path in frontiers:
            payload = json.loads(path.read_text())
            assert payload["schema"] == SENSITIVITY_SCHEMA
            verdicts |= {c["verdict"] for c in payload["cells"]}
            gates[path.stem.replace(".frontier", "")] = payload["gate_passed"]
        assert verdicts == {VERDICT_ROBUST, VERDICT_EXPLAINED,
                            VERDICT_SILENT_BIAS}
        # The silent-bias fixture is committed gated red; the default
        # matrix is committed green.
        assert gates["user-skew-heavy"] is False
        for name in DEFAULT_SENSITIVITY_NAMES:
            assert gates[name] is True, name

    def test_default_goldens_match_a_fresh_run(self, default_suite):
        # Byte-identity against the committed baseline — the same check
        # CI's `--baseline-dir` gate performs, pinned locally.
        _, out_dir = default_suite
        for name in DEFAULT_SENSITIVITY_NAMES:
            fresh = (out_dir / f"{name}.frontier.json").read_text()
            golden = (GOLDEN_DIR / f"{name}.frontier.json").read_text()
            assert fresh == golden, f"{name} frontier drifted from golden"
        assert ((out_dir / "summary.json").read_text()
                == (GOLDEN_DIR / "summary.json").read_text())


class TestSensitivityCLI:
    def test_unknown_fixture_exits_2(self, capsys):
        from repro.cli.main import main

        assert main(["sensitivity", "no-such-fixture"]) == 2

    def test_unknown_scenario_exits_2(self, capsys):
        from repro.cli.main import main

        assert main(["sensitivity", "--scenario", "no-such-scenario"]) == 2

    def test_baseline_dir_requires_out_dir(self):
        from repro.cli.main import main

        assert main(["sensitivity", "user-skew-mild",
                     "--baseline-dir", "/tmp/nowhere"]) == 2

    def test_single_fixture_gate_passes_and_rebaselines(self, tmp_path,
                                                        capsys):
        from repro.cli.main import main

        out_dir = tmp_path / "run"
        assert main(["sensitivity", "user-skew-mild", "--smoke",
                     "--out-dir", str(out_dir)]) == 0
        assert "sensitivity gate: PASS" in capsys.readouterr().out
        cand = tmp_path / "cand"
        assert main(["sensitivity", "user-skew-mild", "--smoke",
                     "--out-dir", str(cand),
                     "--baseline-dir", str(out_dir)]) == 0
        assert "no baseline drift" in capsys.readouterr().out

    def test_silent_bias_exits_1(self, capsys):
        from repro.cli.main import main

        assert main(["sensitivity", "user-skew-heavy", "--smoke"]) == 1
        assert "FAIL — silent bias" in capsys.readouterr().out
