"""Tests for the experiment drivers and registry (small scale)."""

import numpy as np
import pytest

from repro.analysis import EXPERIMENTS, SMALL, Scale, run_experiment
from repro.analysis.base import ExperimentOutcome, nlp_rows
from repro.errors import ConfigError

#: Slightly bigger than SMALL so qualitative checks are stable under seeds.
TEST_SCALE = Scale(duration_days=4.0, n_users=250, candidates_per_user_day=100.0)


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        assert set(EXPERIMENTS) == {
            "fig1", "fig2", "fig3", "table1", "fig4", "fig5", "fig6",
            "fig7", "fig8", "fig9", "bottleneck", "sessions", "regions",
        }

    def test_unknown_experiment(self):
        with pytest.raises(ConfigError):
            run_experiment("fig99")

    def test_scale_by_name(self):
        outcome = run_experiment("table1", scale="small")
        assert outcome.passed

    def test_bad_scale_name(self):
        with pytest.raises(ConfigError):
            run_experiment("table1", scale="galactic")


class TestOutcomeRendering:
    def test_render_contains_tables_and_checks(self):
        outcome = run_experiment("table1")
        text = outcome.render()
        assert "table1" in text
        assert "PASS" in text
        assert "|" in text  # a rendered table

    def test_nlp_rows_handles_nan(self):
        class FakeCurve:
            def at(self, latency):
                return float("nan") if latency > 500 else 0.9

        rows = nlp_rows({"x": FakeCurve()}, [400.0, 900.0])
        assert rows[0][1] == 0.9
        assert rows[0][2] is None

    def test_outcome_passed_aggregates(self):
        outcome = ExperimentOutcome(experiment_id="x", title="t")
        outcome.add_check("good", True)
        assert outcome.passed
        outcome.add_check("bad", False)
        assert not outcome.passed


class TestTable1:
    def test_deterministic_and_exact(self):
        outcome = run_experiment("table1")
        assert outcome.passed
        assert len(outcome.checks) == 9


class TestFig1:
    def test_passes_at_small_scale(self):
        outcome = run_experiment("fig1", seed=11, scale=TEST_SCALE)
        assert outcome.passed, outcome.render(include_plots=False)
        assert "fig1" in outcome.series


class TestFig2:
    def test_detrended_check(self):
        outcome = run_experiment("fig2", seed=11, scale=TEST_SCALE)
        assert outcome.passed, outcome.render(include_plots=False)


class TestFig3:
    def test_biased_shifted_left(self):
        outcome = run_experiment("fig3", seed=11, scale=TEST_SCALE)
        assert outcome.passed, outcome.render(include_plots=False)
        assert {"fig3a", "fig3b", "fig3c"} <= set(outcome.series)


class TestBottleneck:
    def test_drop_factor_below_two(self):
        outcome = run_experiment("bottleneck", seed=11, scale=TEST_SCALE)
        assert outcome.passed, outcome.render(include_plots=False)


class TestStructuralDrivers:
    """Structure-only smoke runs for the heavier drivers.

    Qualitative checks at this scale can be noisy, so these assert the
    outcomes are complete (tables, series, checks present), not that every
    check passes — the benchmarks assert checks at full scale.
    """

    def test_fig4_structure(self):
        outcome = run_experiment("fig4", seed=11, scale=TEST_SCALE)
        assert len(outcome.tables) == 2
        assert any(k.startswith("fig4_") for k in outcome.series)
        assert outcome.checks

    def test_fig5_structure(self):
        outcome = run_experiment("fig5", seed=11, scale=TEST_SCALE)
        assert {"fig5_business", "fig5_consumer"} <= set(outcome.series)

    def test_fig9_structure(self):
        outcome = run_experiment("fig9", seed=21, scale=TEST_SCALE)
        labels = [k for k in outcome.series if k.startswith("fig9_")]
        assert len(labels) == 4  # 2 actions x 2 months

    def test_sessions_structure(self):
        outcome = run_experiment("sessions", seed=11, scale=TEST_SCALE)
        assert len(outcome.tables) == 2
        assert outcome.notes

    def test_regions_structure(self):
        outcome = run_experiment("regions", seed=77, scale=TEST_SCALE)
        assert len(outcome.tables) == 2
        assert outcome.notes


class TestSummary:
    def test_summarize_counts(self):
        from repro.analysis.summary import failing_checks, summarize

        good = run_experiment("table1")
        bad = ExperimentOutcome(experiment_id="x", title="synthetic failure")
        bad.add_check("never true", False, "by construction")
        text = summarize([good, bad])
        assert "table1" in text and "FAIL" in text
        assert "1/2 experiments fully passing" in text
        failures = failing_checks([good, bad])
        assert failures == ["x: never true — by construction"]
