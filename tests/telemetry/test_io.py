"""Tests for JSONL and CSV telemetry IO."""

import gzip

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.telemetry import (
    ActionRecord,
    iter_jsonl,
    read_csv,
    read_jsonl,
    write_csv,
    write_jsonl,
)


@pytest.fixture()
def records():
    return [
        ActionRecord(time=float(i), action="SelectMail", latency_ms=100.0 + i,
                     user_id=f"u{i % 2}", user_class="business",
                     success=(i != 3), tz_offset_hours=-5.0)
        for i in range(6)
    ]


class TestJsonl:
    def test_round_trip(self, records, tmp_path):
        path = tmp_path / "logs.jsonl"
        assert write_jsonl(records, path) == 6
        store = read_jsonl(path)
        assert len(store) == 6
        assert np.allclose(store.latencies_ms, [100.0 + i for i in range(6)])
        assert store.success.sum() == 5
        assert (store.tz_offsets == -5.0).all()

    def test_gzip_round_trip(self, records, tmp_path):
        path = tmp_path / "logs.jsonl.gz"
        write_jsonl(records, path)
        with gzip.open(path, "rt") as fh:
            assert fh.readline().startswith("{")
        store = read_jsonl(path)
        assert len(store) == 6

    def test_blank_lines_skipped(self, records, tmp_path):
        path = tmp_path / "logs.jsonl"
        write_jsonl(records, path)
        content = path.read_text()
        path.write_text(content.replace("\n", "\n\n"))
        assert len(read_jsonl(path)) == 6

    def test_strict_raises_with_line_number(self, records, tmp_path):
        path = tmp_path / "logs.jsonl"
        write_jsonl(records[:2], path)
        with open(path, "a") as fh:
            fh.write("{not json}\n")
        with pytest.raises(SchemaError, match=":3"):
            read_jsonl(path)

    def test_lenient_skips_bad_lines(self, records, tmp_path):
        path = tmp_path / "logs.jsonl"
        write_jsonl(records[:2], path)
        with open(path, "a") as fh:
            fh.write("{not json}\n")
        assert len(read_jsonl(path, strict=False)) == 2

    def test_iter_is_lazy(self, records, tmp_path):
        path = tmp_path / "logs.jsonl"
        write_jsonl(records, path)
        iterator = iter_jsonl(path)
        first = next(iterator)
        assert first.time == 0.0


class TestCsv:
    def test_round_trip(self, records, tmp_path):
        path = tmp_path / "logs.csv"
        assert write_csv(records, path) == 6
        store = read_csv(path)
        assert len(store) == 6
        assert store.success.sum() == 5
        assert store.actions.tolist() == ["SelectMail"] * 6

    def test_missing_required_column(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time,action\n1.0,a\n")
        with pytest.raises(SchemaError, match="latency_ms"):
            read_csv(path)

    def test_strict_bad_row(self, records, tmp_path):
        path = tmp_path / "logs.csv"
        write_csv(records[:1], path)
        with open(path, "a") as fh:
            fh.write("oops,SelectMail,xyz,,,1,0\n")
        with pytest.raises(SchemaError):
            read_csv(path)

    def test_lenient_bad_row(self, records, tmp_path):
        path = tmp_path / "logs.csv"
        write_csv(records[:1], path)
        with open(path, "a") as fh:
            fh.write("oops,SelectMail,xyz,,,1,0\n")
        assert len(read_csv(path, strict=False)) == 1

    def test_jsonl_csv_agree(self, records, tmp_path):
        jsonl_store = read_jsonl(
            (lambda p: (write_jsonl(records, p), p)[1])(tmp_path / "a.jsonl")
        )
        csv_store = read_csv(
            (lambda p: (write_csv(records, p), p)[1])(tmp_path / "a.csv")
        )
        assert np.allclose(jsonl_store.latencies_ms, csv_store.latencies_ms)
        assert np.allclose(jsonl_store.times, csv_store.times)
