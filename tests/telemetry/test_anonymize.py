"""Tests for anonymization and the aggregate-size privacy guard."""

import pytest

from repro.errors import PrivacyError
from repro.telemetry import (
    ActionRecord,
    LogStore,
    anonymize_all,
    anonymize_user_id,
    is_guid_shaped,
    require_min_aggregate,
)


class TestAnonymize:
    def test_guid_shape(self):
        token = anonymize_user_id("alice@example.com")
        assert is_guid_shaped(token)

    def test_deterministic(self):
        assert anonymize_user_id("bob") == anonymize_user_id("bob")

    def test_distinct_inputs_distinct_outputs(self):
        assert anonymize_user_id("a") != anonymize_user_id("b")

    def test_key_changes_mapping(self):
        assert anonymize_user_id("a", key=b"k1") != anonymize_user_id("a", key=b"k2")

    def test_anonymize_all_order(self):
        tokens = anonymize_all(["x", "y", "x"])
        assert tokens[0] == tokens[2]
        assert tokens[0] != tokens[1]

    def test_is_guid_shaped_rejects_junk(self):
        assert not is_guid_shaped("hello")
        assert not is_guid_shaped("zzzzzzzz-zzzz-zzzz-zzzz-zzzzzzzzzzzz")
        assert not is_guid_shaped("0123456789ab-cdef")


class TestAggregateGuard:
    def _store(self, n_users):
        records = [
            ActionRecord(time=float(i), action="a", latency_ms=1.0,
                         user_id=f"u{i}")
            for i in range(n_users)
        ]
        return LogStore.from_records(records)

    def test_passes_large_aggregate(self):
        store = self._store(60)
        assert require_min_aggregate(store, min_users=50) is store

    def test_rejects_small_aggregate(self):
        with pytest.raises(PrivacyError, match="aggregate covers only 10"):
            require_min_aggregate(self._store(10), min_users=50)

    def test_rejects_empty(self):
        with pytest.raises(PrivacyError):
            require_min_aggregate(LogStore.from_records([]), min_users=1)

    def test_custom_label_in_message(self):
        with pytest.raises(PrivacyError, match="quartile Q1"):
            require_min_aggregate(self._store(3), min_users=5, what="quartile Q1")
