"""Tests for time discretization helpers."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.telemetry import timeutil
from repro.types import DayPeriod


class TestHourOfDay:
    def test_basic(self):
        hours = timeutil.hour_of_day(np.array([0.0, 3600.0, 86400.0 + 1800.0]))
        assert np.allclose(hours, [0.0, 1.0, 0.5])

    def test_tz_offset(self):
        hours = timeutil.hour_of_day(np.array([0.0]), tz_offset_hours=-5.0)
        assert np.isclose(hours[0], 19.0)

    def test_vector_tz(self):
        hours = timeutil.hour_of_day(np.array([0.0, 0.0]),
                                     tz_offset_hours=np.array([1.0, 2.0]))
        assert np.allclose(hours, [1.0, 2.0])


class TestSlots:
    def test_hour_slot(self):
        slots = timeutil.hour_slot(np.array([0.0, 3599.0, 3600.0]))
        assert slots.tolist() == [0, 0, 1]

    def test_absolute_hour_slot(self):
        slots = timeutil.absolute_hour_slot(np.array([0.0, 86400.0 + 10.0]))
        assert slots.tolist() == [0, 24]

    def test_day_index(self):
        days = timeutil.day_index(np.array([10.0, 86400.0 * 2 + 5.0]))
        assert days.tolist() == [0, 2]

    def test_day_index_tz_shift(self):
        # 11pm UTC with +2h offset is already the next local day
        days = timeutil.day_index(np.array([23 * 3600.0]), tz_offset_hours=2.0)
        assert days.tolist() == [1]

    def test_month_index(self):
        months = timeutil.month_index(np.array([0.0, 31 * 86400.0]), days_per_month=30)
        assert months.tolist() == [0, 1]

    def test_month_index_validation(self):
        with pytest.raises(ConfigError):
            timeutil.month_index(np.array([0.0]), days_per_month=0)

    def test_window_index(self):
        windows = timeutil.window_index(np.array([0.0, 59.0, 60.0]), 60.0)
        assert windows.tolist() == [0, 0, 1]

    def test_window_index_validation(self):
        with pytest.raises(ConfigError):
            timeutil.window_index(np.array([0.0]), 0.0)


class TestDayPeriod:
    def test_all_hours_covered(self):
        for hour in range(24):
            assert DayPeriod.of_hour(hour) in DayPeriod

    def test_boundaries(self):
        assert DayPeriod.of_hour(8.0) == DayPeriod.MORNING
        assert DayPeriod.of_hour(13.99) == DayPeriod.MORNING
        assert DayPeriod.of_hour(14.0) == DayPeriod.AFTERNOON
        assert DayPeriod.of_hour(20.0) == DayPeriod.NIGHT
        assert DayPeriod.of_hour(1.99) == DayPeriod.NIGHT
        assert DayPeriod.of_hour(2.0) == DayPeriod.LATE_NIGHT

    def test_wraps_over_24(self):
        assert DayPeriod.of_hour(25.0) == DayPeriod.NIGHT

    def test_array_mapper(self):
        periods = timeutil.day_period(np.array([9 * 3600.0, 3 * 3600.0]))
        assert periods[0] == DayPeriod.MORNING
        assert periods[1] == DayPeriod.LATE_NIGHT
