"""Tests for composable predicates."""

import numpy as np

from repro.telemetry import filters
from repro.types import ActionType, DayPeriod, UserClass


class TestAtoms:
    def test_action_is(self, tiny_logs):
        selected = filters.action_is("Search").apply(tiny_logs)
        assert all(a == "Search" for a in selected.actions)

    def test_action_enum(self, tiny_logs):
        predicate = filters.action_is(ActionType.SELECT_MAIL)
        assert len(predicate.apply(tiny_logs)) == 6

    def test_unknown_action_empty_mask(self, tiny_logs):
        assert len(filters.action_is("Nope").apply(tiny_logs)) == 0

    def test_user_class(self, tiny_logs):
        selected = filters.user_class_is(UserClass.BUSINESS).apply(tiny_logs)
        assert all(c == "business" for c in selected.user_classes)

    def test_latency_between(self, tiny_logs):
        selected = filters.latency_between(100.0, 150.0).apply(tiny_logs)
        assert all(100.0 <= v < 150.0 for v in selected.latencies_ms)

    def test_time_between(self, tiny_logs):
        selected = filters.time_between(0.0, 1201.0).apply(tiny_logs)
        assert len(selected) == 3

    def test_successful(self, tiny_logs):
        assert len(filters.successful().apply(tiny_logs)) == 11

    def test_everything(self, tiny_logs):
        assert len(filters.everything().apply(tiny_logs)) == len(tiny_logs)

    def test_in_period_wrapping(self, tiny_logs):
        mask = filters.in_period(DayPeriod.NIGHT).mask(tiny_logs)
        # tiny logs all start at time 0..6600s = midnight..1:50am -> NIGHT
        assert mask.all()

    def test_in_month(self, tiny_logs):
        assert filters.in_month(0).mask(tiny_logs).all()
        assert not filters.in_month(1).mask(tiny_logs).any()


class TestCombinators:
    def test_and(self, tiny_logs):
        predicate = filters.action_is("Search") & filters.successful()
        selected = predicate.apply(tiny_logs)
        assert all(a == "Search" for a in selected.actions)
        assert selected.success.all()

    def test_or(self, tiny_logs):
        predicate = filters.action_is("Search") | filters.action_is("SelectMail")
        assert len(predicate.apply(tiny_logs)) == len(tiny_logs)

    def test_not(self, tiny_logs):
        predicate = ~filters.action_is("Search")
        assert all(a != "Search" for a in predicate.apply(tiny_logs).actions)

    def test_name_composition(self):
        predicate = filters.action_is("a") & ~filters.successful()
        assert "action=a" in predicate.name
        assert "~success" in predicate.name

    def test_demorgan(self, tiny_logs):
        lhs = ~(filters.action_is("Search") | filters.successful())
        rhs = ~filters.action_is("Search") & ~filters.successful()
        assert np.array_equal(lhs.mask(tiny_logs), rhs.mask(tiny_logs))
