"""Tests for the columnar LogStore."""

import numpy as np
import pytest

from repro.errors import EmptyDataError, SchemaError
from repro.telemetry import ActionRecord, LogStore
from repro.types import DayPeriod


class TestConstruction:
    def test_from_records(self, tiny_logs):
        assert len(tiny_logs) == 12
        assert set(tiny_logs.action_names()) == {"SelectMail", "Search"}
        assert tiny_logs.n_users() == 3

    def test_from_arrays_defaults(self):
        store = LogStore.from_arrays(
            times=[0.0, 1.0], latencies_ms=[10.0, 20.0],
            actions=["a", "b"],
        )
        assert len(store) == 2
        assert store.success.all()
        assert (store.tz_offsets == 0).all()

    def test_column_length_mismatch(self):
        with pytest.raises(SchemaError):
            LogStore.from_arrays(times=[0.0], latencies_ms=[1.0, 2.0],
                                 actions=["a"])

    def test_empty_store(self):
        store = LogStore.from_records([])
        assert store.is_empty
        with pytest.raises(EmptyDataError):
            store.time_range()

    def test_decoded_columns(self, tiny_logs):
        assert tiny_logs.actions[0] == "SelectMail"
        assert tiny_logs.user_classes[0] == "consumer"


class TestFiltering:
    def test_where_action(self, tiny_logs):
        selected = tiny_logs.where(action="Search")
        assert len(selected) > 0
        assert all(a == "Search" for a in selected.actions)

    def test_where_unknown_action_empty(self, tiny_logs):
        assert len(tiny_logs.where(action="Nope")) == 0

    def test_where_class(self, tiny_logs):
        selected = tiny_logs.where(user_class="business")
        assert len(selected) > 0
        assert all(c == "business" for c in selected.user_classes)

    def test_success_filter_default(self, tiny_logs):
        # record 5 is a failure; where() drops it by default
        assert len(tiny_logs.where()) == 11
        assert len(tiny_logs.where(success_only=False)) == 12

    def test_where_time_range(self, tiny_logs):
        selected = tiny_logs.where(time_range=(0.0, 1800.0))
        assert all(t < 1800.0 for t in selected.times)

    def test_where_user_codes(self, tiny_logs):
        code = tiny_logs.user_vocab.index("user-0")
        selected = tiny_logs.where(user_codes=np.array([code]))
        assert selected.n_users() == 1

    def test_where_period(self):
        # actions at 9am and 3am local
        records = [
            ActionRecord(time=9 * 3600.0, action="a", latency_ms=1.0),
            ActionRecord(time=3 * 3600.0, action="a", latency_ms=1.0),
        ]
        store = LogStore.from_records(records)
        morning = store.where(period=DayPeriod.MORNING)
        assert len(morning) == 1
        assert morning.times[0] == 9 * 3600.0

    def test_where_period_respects_tz(self):
        # 9am UTC with -6h offset = 3am local -> LATE_NIGHT
        record = ActionRecord(time=9 * 3600.0, action="a", latency_ms=1.0,
                              tz_offset_hours=-6.0)
        store = LogStore.from_records([record])
        assert len(store.where(period=DayPeriod.MORNING)) == 0
        assert len(store.where(period=DayPeriod.LATE_NIGHT)) == 1

    def test_where_month(self):
        records = [
            ActionRecord(time=5 * 86400.0, action="a", latency_ms=1.0),
            ActionRecord(time=45 * 86400.0, action="a", latency_ms=1.0),
        ]
        store = LogStore.from_records(records)
        assert len(store.where(month=0)) == 1
        assert len(store.where(month=1)) == 1

    def test_filter_mask_shape_check(self, tiny_logs):
        with pytest.raises(SchemaError):
            tiny_logs.filter(np.ones(3, dtype=bool))

    def test_filter_shares_vocab(self, tiny_logs):
        selected = tiny_logs.filter(np.ones(len(tiny_logs), dtype=bool))
        assert selected.action_vocab is tiny_logs.action_vocab


class TestOrderingAndConcat:
    def test_sorted_by_time(self):
        records = [
            ActionRecord(time=5.0, action="a", latency_ms=1.0),
            ActionRecord(time=1.0, action="b", latency_ms=2.0),
        ]
        store = LogStore.from_records(records).sorted_by_time()
        assert store.times.tolist() == [1.0, 5.0]
        assert store.actions.tolist() == ["b", "a"]

    def test_concat_re_encodes_vocab(self):
        a = LogStore.from_arrays([0.0], [1.0], ["x"], ["u1"], ["c1"])
        b = LogStore.from_arrays([1.0], [2.0], ["y"], ["u2"], ["c2"])
        merged = a.concat(b)
        assert len(merged) == 2
        assert set(merged.action_names()) == {"x", "y"}
        assert merged.n_users() == 2

    def test_concat_shared_names_merge(self):
        a = LogStore.from_arrays([0.0], [1.0], ["x"], ["u"], ["c"])
        b = LogStore.from_arrays([1.0], [2.0], ["x"], ["u"], ["c"])
        merged = a.concat(b)
        assert merged.n_users() == 1
        assert merged.action_names() == ["x"]


class TestAggregation:
    def test_per_user_median(self):
        records = [
            ActionRecord(time=0.0, action="a", latency_ms=100.0, user_id="u1"),
            ActionRecord(time=1.0, action="a", latency_ms=300.0, user_id="u1"),
            ActionRecord(time=2.0, action="a", latency_ms=50.0, user_id="u2"),
        ]
        store = LogStore.from_records(records)
        codes, medians = store.per_user_median_latency()
        by_code = dict(zip(codes.tolist(), medians.tolist()))
        u1 = store.user_vocab.index("u1")
        u2 = store.user_vocab.index("u2")
        assert by_code[u1] == 200.0
        assert by_code[u2] == 50.0

    def test_per_user_counts(self, tiny_logs):
        codes, counts = tiny_logs.per_user_action_count()
        assert counts.sum() == len(tiny_logs)

    def test_per_user_median_empty(self):
        with pytest.raises(EmptyDataError):
            LogStore.from_records([]).per_user_median_latency()


class TestRoundTrip:
    def test_records_round_trip(self, tiny_logs):
        records = tiny_logs.to_records()
        clone = LogStore.from_records(records)
        assert np.allclose(clone.times, tiny_logs.times)
        assert np.allclose(clone.latencies_ms, tiny_logs.latencies_ms)
        assert clone.actions.tolist() == tiny_logs.actions.tolist()
        assert np.array_equal(clone.success, tiny_logs.success)

    def test_duration(self, tiny_logs):
        assert tiny_logs.duration() == tiny_logs.times.max() - tiny_logs.times.min()
