"""Tests for the ActionRecord schema."""

import pytest

from repro.errors import SchemaError
from repro.telemetry.record import ActionRecord


class TestValidation:
    def test_minimal_record(self):
        record = ActionRecord(time=0.0, action="SelectMail", latency_ms=120.0)
        assert record.success
        assert record.user_id == ""

    def test_rejects_empty_action(self):
        with pytest.raises(SchemaError):
            ActionRecord(time=0.0, action="", latency_ms=1.0)

    def test_rejects_negative_latency(self):
        with pytest.raises(SchemaError):
            ActionRecord(time=0.0, action="a", latency_ms=-1.0)

    def test_rejects_absurd_tz(self):
        with pytest.raises(SchemaError):
            ActionRecord(time=0.0, action="a", latency_ms=1.0, tz_offset_hours=30.0)

    def test_local_time(self):
        record = ActionRecord(time=3600.0, action="a", latency_ms=1.0,
                              tz_offset_hours=-2.0)
        assert record.local_time() == 3600.0 - 7200.0


class TestRoundTrip:
    def test_dict_round_trip(self):
        record = ActionRecord(
            time=12.5, action="Search", latency_ms=432.1,
            user_id="guid", user_class="consumer", success=False,
            tz_offset_hours=5.5, extra={"region": "us"},
        )
        clone = ActionRecord.from_dict(record.to_dict())
        assert clone.time == record.time
        assert clone.action == record.action
        assert clone.latency_ms == record.latency_ms
        assert clone.user_id == record.user_id
        assert clone.user_class == record.user_class
        assert clone.success is False
        assert clone.tz_offset_hours == 5.5
        assert clone.extra == {"region": "us"}

    def test_extra_omitted_when_empty(self):
        record = ActionRecord(time=0.0, action="a", latency_ms=1.0)
        assert "extra" not in record.to_dict()

    def test_from_dict_defaults(self):
        clone = ActionRecord.from_dict(
            {"time": 1, "action": "a", "latency_ms": 2}
        )
        assert clone.success is True
        assert clone.tz_offset_hours == 0.0

    def test_from_dict_missing_field(self):
        with pytest.raises(SchemaError):
            ActionRecord.from_dict({"action": "a", "latency_ms": 2})

    def test_from_dict_bad_type(self):
        with pytest.raises(SchemaError):
            ActionRecord.from_dict({"time": "not-a-number", "action": "a",
                                    "latency_ms": 2})

    def test_frozen(self):
        record = ActionRecord(time=0.0, action="a", latency_ms=1.0)
        with pytest.raises(AttributeError):
            record.time = 5.0
