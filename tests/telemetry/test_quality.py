"""Tests for the telemetry quality report."""

import numpy as np
import pytest

from repro.errors import EmptyDataError
from repro.telemetry import ActionRecord, LogStore, quality_report


def _logs(n=2000, span_days=2.0, error_share=0.0, gap_hours=0.0):
    rng = np.random.default_rng(0)
    times = np.sort(rng.uniform(0, span_days * 86400.0, n))
    if gap_hours > 0:
        # carve a silence in the middle
        mid = span_days * 43200.0
        half_gap = gap_hours * 1800.0
        times = times[(times < mid - half_gap) | (times > mid + half_gap)]
    success = rng.random(times.size) >= error_share
    return LogStore.from_arrays(
        times=times,
        latencies_ms=rng.lognormal(5.7, 0.4, times.size),
        actions=["A" if i % 2 else "B" for i in range(times.size)],
        user_ids=[f"u{i % 60}" for i in range(times.size)],
        success=success,
    )


class TestQualityReport:
    def test_clean_logs_no_flags(self, owa_logs):
        report = quality_report(owa_logs)
        assert report.ok
        assert report.n_rows == len(owa_logs)
        assert report.coverage_share > 0.95
        assert report.latency_percentiles["p50"] > 0

    def test_low_volume_error(self):
        report = quality_report(_logs(n=200), min_rows=1000)
        assert not report.ok
        assert any("rows" in f.message for f in report.flags
                   if f.severity == "error")

    def test_error_storm_flagged(self):
        report = quality_report(_logs(error_share=0.5))
        assert any("failed" in f.message for f in report.flags)

    def test_short_span_flagged(self):
        report = quality_report(_logs(span_days=0.3))
        assert any("span" in f.message for f in report.flags)

    def test_gap_flagged(self):
        report = quality_report(_logs(span_days=3.0, gap_hours=14.0))
        assert any("silence" in f.message for f in report.flags)
        assert report.largest_gap_s > 6 * 3600.0

    def test_per_action_counts(self):
        report = quality_report(_logs())
        assert set(report.rows_per_action) == {"A", "B"}
        assert sum(report.rows_per_action.values()) == report.n_rows

    def test_duplicate_timestamps_info(self):
        times = np.repeat(np.arange(0.0, 90_000.0, 60.0), 3)
        logs = LogStore.from_arrays(
            times=times, latencies_ms=np.full(times.size, 300.0),
            actions=["A"] * times.size,
        )
        report = quality_report(logs)
        assert report.duplicate_time_share > 0.5
        assert any("timestamp" in f.message for f in report.flags)

    def test_rows_render(self):
        rows = quality_report(_logs()).rows()
        keys = [k for k, _ in rows]
        assert "rows" in keys and "latency p99 (ms)" in keys

    def test_empty_rejected(self):
        with pytest.raises(EmptyDataError):
            quality_report(LogStore.from_records([]))


class TestQualityCli:
    def test_cli_quality(self, tmp_path, capsys):
        from repro.cli.main import main

        path = tmp_path / "logs.jsonl"
        main(["generate", "--scenario", "owa", "--seed", "3",
              "--days", "2", "--users", "120", "--out", str(path)])
        capsys.readouterr()
        assert main(["quality", str(path)]) == 0
        out = capsys.readouterr().out
        assert "distinct users" in out
