"""Tests for sessionization."""

import numpy as np
import pytest

from repro.errors import ConfigError, EmptyDataError
from repro.telemetry import (
    ActionRecord,
    LogStore,
    session_length_vs_latency,
    sessionize,
)


def _store(rows):
    return LogStore.from_records([
        ActionRecord(time=t, action="a", latency_ms=lat, user_id=user)
        for t, lat, user in rows
    ])


class TestSessionize:
    def test_single_session(self):
        store = _store([(0.0, 100.0, "u"), (10.0, 120.0, "u"), (20.0, 110.0, "u")])
        sessions = sessionize(store, gap_seconds=60.0)
        assert len(sessions) == 1
        assert sessions[0].n_actions == 3
        assert np.isclose(sessions[0].mean_latency_ms, 110.0)

    def test_gap_splits(self):
        store = _store([(0.0, 100.0, "u"), (10.0, 100.0, "u"), (10_000.0, 100.0, "u")])
        sessions = sessionize(store, gap_seconds=60.0)
        assert [s.n_actions for s in sessions] == [2, 1]

    def test_users_never_share_sessions(self):
        store = _store([(0.0, 100.0, "a"), (1.0, 100.0, "b"), (2.0, 100.0, "a")])
        sessions = sessionize(store, gap_seconds=1e6)
        assert len(sessions) == 2
        assert sorted(s.n_actions for s in sessions) == [1, 2]

    def test_unsorted_input_ok(self):
        store = _store([(20.0, 100.0, "u"), (0.0, 100.0, "u"), (10.0, 100.0, "u")])
        sessions = sessionize(store, gap_seconds=60.0)
        assert len(sessions) == 1
        assert sessions[0].start == 0.0 and sessions[0].end == 20.0

    def test_empty_logs(self):
        assert sessionize(LogStore.from_records([])) == []

    def test_bad_gap(self):
        with pytest.raises(ConfigError):
            sessionize(_store([(0.0, 1.0, "u")]), gap_seconds=0.0)

    def test_duration_property(self):
        store = _store([(5.0, 100.0, "u"), (25.0, 100.0, "u")])
        session = sessionize(store, gap_seconds=60.0)[0]
        assert session.duration == 20.0


class TestSessionLatencySplit:
    def test_fast_sessions_longer(self):
        rows = []
        # fast user does long sessions, slow user short ones
        for day in range(20):
            base = day * 86400.0
            for i in range(8):
                rows.append((base + i * 30.0, 100.0, "fast"))
            for i in range(2):
                rows.append((base + 40_000.0 + i * 30.0, 900.0, "slow"))
        sessions = sessionize(_store(rows), gap_seconds=600.0)
        fast_mean, slow_mean = session_length_vs_latency(sessions, 500.0)
        assert fast_mean > slow_mean

    def test_empty_side_raises(self):
        sessions = sessionize(_store([(0.0, 100.0, "u")]), gap_seconds=60.0)
        with pytest.raises(EmptyDataError):
            session_length_vs_latency(sessions, 1.0)

    def test_no_sessions_raises(self):
        with pytest.raises(EmptyDataError):
            session_length_vs_latency([], 100.0)
