"""Unit tests for the fault-spec catalogue: each fault does what it says,
deterministically, without mutating its input."""

import json
import math

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.faults import (
    DEFAULT_FAULT_SPECS,
    ClockSkew,
    DropFields,
    DuplicateRows,
    FaultPlan,
    GapWindow,
    MalformedLines,
    NaNLatency,
    NegativeLatency,
    OutlierLatency,
    OutOfOrderTimestamps,
    TruncatedLines,
    write_corrupted,
)


def _rows(n=50):
    return [
        {
            "time": float(i * 60),
            "action": "SelectMail",
            "latency_ms": 100.0 + i,
            "user_id": f"u{i % 5}",
            "user_class": "business",
            "success": True,
            "tz_offset_hours": 0.0,
        }
        for i in range(n)
    ]


def _apply(spec, rows, seed=0):
    return FaultPlan(specs=(spec,), seed=seed).apply(rows)


def _freeze(rows):
    """NaN-safe comparable form (NaN != NaN breaks dict equality)."""
    return [
        row if isinstance(row, str) else json.dumps(row, sort_keys=True)
        for row in rows
    ]


class TestFaultPlan:
    def test_deterministic(self):
        rows = _rows()
        plan = FaultPlan(
            specs=(MalformedLines(rate=0.2), NaNLatency(rate=0.2)), seed=42
        )
        assert _freeze(plan.apply(rows)) == _freeze(plan.apply(rows))

    def test_seed_changes_output(self):
        rows = _rows()
        a = FaultPlan(specs=(ClockSkew(rate=1.0),), seed=1).apply(rows)
        b = FaultPlan(specs=(ClockSkew(rate=1.0),), seed=2).apply(rows)
        assert a != b

    def test_input_rows_not_mutated(self):
        rows = _rows()
        snapshot = [dict(r) for r in rows]
        FaultPlan(
            specs=(NaNLatency(rate=1.0), DropFields(rate=1.0)), seed=0
        ).apply(rows)
        assert rows == snapshot

    def test_describe(self):
        plan = FaultPlan(specs=(NaNLatency(), GapWindow()), seed=0)
        assert plan.describe() == "NaNLatency -> GapWindow"
        assert FaultPlan().describe() == "(no faults)"

    def test_rate_validation(self):
        with pytest.raises(ConfigError):
            NaNLatency(rate=1.5)
        with pytest.raises(ConfigError):
            OutOfOrderTimestamps(window=1)
        with pytest.raises(ConfigError):
            GapWindow(start_frac=2.0)


class TestIndividualSpecs:
    def test_malformed_lines_emit_strings(self):
        out = _apply(MalformedLines(rate=1.0), _rows())
        assert out and all(isinstance(r, str) for r in out)
        for line in out:
            with pytest.raises(Exception):
                parsed = json.loads(line)
                if not isinstance(parsed, dict):
                    raise ValueError("not an object")

    def test_truncated_lines_are_cut_json(self):
        out = _apply(TruncatedLines(rate=1.0), _rows())
        assert all(isinstance(r, str) for r in out)
        full = json.dumps(_rows()[0], separators=(",", ":"))
        assert all(len(r) < len(full) + 40 for r in out)

    def test_nan_latency(self):
        out = _apply(NaNLatency(rate=1.0), _rows())
        assert all(math.isnan(r["latency_ms"]) for r in out)

    def test_negative_latency(self):
        out = _apply(NegativeLatency(rate=1.0), _rows())
        assert all(r["latency_ms"] < 0 for r in out)

    def test_outlier_latency(self):
        rows = _rows()
        out = _apply(OutlierLatency(rate=1.0, factor=1000.0), rows)
        assert all(
            got["latency_ms"] == src["latency_ms"] * 1000.0
            for got, src in zip(out, rows)
        )

    def test_clock_skew_bounded(self):
        rows = _rows()
        out = _apply(ClockSkew(rate=1.0, max_skew_s=100.0), rows)
        deltas = [abs(g["time"] - s["time"]) for g, s in zip(out, rows)]
        assert max(deltas) <= 100.0
        assert max(deltas) > 0.0

    def test_out_of_order_preserves_multiset(self):
        rows = _rows(64)
        out = _apply(OutOfOrderTimestamps(rate=1.0, window=8), rows)
        assert len(out) == len(rows)
        key = lambda r: r["time"]
        assert sorted(out, key=key) == sorted(rows, key=key)
        assert out != rows

    def test_duplicate_rows_grow_the_stream(self):
        rows = _rows()
        out = _apply(DuplicateRows(rate=1.0), rows)
        assert len(out) == 2 * len(rows)

    def test_drop_fields(self):
        out = _apply(DropFields(rate=1.0, fields=("latency_ms", "action")), _rows())
        assert all("latency_ms" not in r and "action" not in r for r in out)

    def test_gap_window_removes_a_time_band(self):
        rows = _rows(100)  # times 0..5940
        out = _apply(GapWindow(start_frac=0.5, length_frac=0.1), rows)
        assert len(out) < len(rows)
        span = 99 * 60.0
        lo, hi = 0.5 * span, 0.6 * span
        assert all(not (lo <= r["time"] < hi) for r in out)
        # Rows outside the window survive untouched.
        assert all(r in rows for r in out)

    def test_default_catalogue_instantiates(self):
        for name, factory in DEFAULT_FAULT_SPECS.items():
            spec = factory()
            assert spec.name
            assert _apply(spec, _rows(40), seed=3) is not None


class TestWriteCorrupted:
    def test_nan_round_trips_to_disk(self, tmp_path):
        path = tmp_path / "dirty.jsonl"
        rows = _apply(NaNLatency(rate=1.0), _rows(3))
        assert write_corrupted(rows, path) == 3
        reparsed = [json.loads(line) for line in path.read_text().splitlines()]
        assert all(math.isnan(r["latency_ms"]) for r in reparsed)

    def test_raw_strings_written_verbatim(self, tmp_path):
        path = tmp_path / "dirty.jsonl"
        write_corrupted(["{not json", {"time": 1.0}], path)
        lines = path.read_text().splitlines()
        assert lines[0] == "{not json"
        assert json.loads(lines[1]) == {"time": 1.0}
