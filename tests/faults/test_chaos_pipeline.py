"""Chaos tests: every fault class, end to end through the pipeline.

The contract under corruption is: the pipeline either produces a clean
result whose ingest report flags what was rejected, or raises a typed
:class:`~repro.errors.ReproError` — it never crashes with an untyped
exception and never returns a curve poisoned by non-finite values.
"""

import numpy as np
import pytest

from repro.core import AutoSens, AutoSensConfig, DegradePolicy
from repro.errors import ReproError
from repro.faults import DEFAULT_FAULT_SPECS, FaultPlan, corrupt_jsonl
from repro.telemetry import IngestPolicy, read_jsonl, write_jsonl
from repro.workload import owa_scenario

#: Fault classes whose rows can only be rejected at ingest (syntactic or
#: value-level corruption the readers must catch).
_REJECTED_AT_INGEST = {
    "malformed-lines", "truncated-lines", "nan-latency",
    "negative-latency", "dropped-fields",
}


@pytest.fixture(scope="module")
def clean_file(tmp_path_factory):
    """A clean mid-sized workload written once for the whole module."""
    result = owa_scenario(
        seed=77, duration_days=2.5, n_users=120,
        candidates_per_user_day=80.0,
    ).generate()
    path = tmp_path_factory.mktemp("chaos") / "clean.jsonl"
    write_jsonl(result.logs.iter_records(), path)
    return path


def _curve(logs, seed=5):
    engine = AutoSens(AutoSensConfig(seed=seed), degrade=DegradePolicy())
    return engine.preference_curve(logs)


@pytest.mark.parametrize("fault_name", sorted(DEFAULT_FAULT_SPECS))
def test_pipeline_survives_fault(fault_name, clean_file, tmp_path):
    plan = FaultPlan(specs=(DEFAULT_FAULT_SPECS[fault_name](),), seed=13)
    dirty = tmp_path / f"{fault_name}.jsonl"
    corrupt_jsonl(clean_file, dirty, plan)

    sink = tmp_path / f"{fault_name}.rejects.jsonl"
    policy = IngestPolicy(
        mode="quarantine", max_bad_share=1.0, quarantine_path=sink
    )
    try:
        logs = read_jsonl(dirty, policy=policy)
    except ReproError:
        return  # a typed refusal is an acceptable outcome
    report = logs.ingest_report
    assert report is not None

    if fault_name in _REJECTED_AT_INGEST:
        # Corruption of this class must be caught and quarantined, never
        # silently absorbed into the store.
        assert report.n_bad > 0
        assert sink.exists()
    else:
        # Semantic faults parse fine; the store simply reflects them.
        assert report.n_rows > 0

    try:
        curve = _curve(logs)
    except ReproError:
        return  # starved slices may legitimately refuse
    # Never a poisoned curve: every valid point is finite.
    assert np.isfinite(curve.nlp[curve.valid]).all()


def test_fault_free_plan_is_identity(clean_file, tmp_path):
    dirty = tmp_path / "copy.jsonl"
    corrupt_jsonl(clean_file, dirty, FaultPlan(specs=(), seed=0))
    assert dirty.read_text() == clean_file.read_text()


def test_clean_data_identical_under_every_policy(clean_file, tmp_path):
    """Resilient ingestion must not perturb clean data: the curve from a
    strict read is bit-identical to lenient and quarantine reads."""
    strict = _curve(read_jsonl(clean_file))
    lenient = _curve(read_jsonl(
        clean_file, policy=IngestPolicy(mode="lenient")))
    quarantined = _curve(read_jsonl(clean_file, policy=IngestPolicy(
        mode="quarantine", quarantine_path=tmp_path / "q.jsonl")))
    for other in (lenient, quarantined):
        np.testing.assert_array_equal(strict.nlp, other.nlp)
        np.testing.assert_array_equal(strict.latencies, other.latencies)
        assert strict.n_actions == other.n_actions


def test_quarantine_plus_degrade_full_sweep(clean_file, tmp_path):
    """The dirty-data quickstart path: corrupt heavily, quarantine, sweep
    with a degrade policy — starved slices are skipped and recorded."""
    specs = tuple(DEFAULT_FAULT_SPECS[name]() for name in sorted(DEFAULT_FAULT_SPECS))
    dirty = tmp_path / "everything.jsonl"
    corrupt_jsonl(clean_file, dirty, FaultPlan(specs=specs, seed=99))

    logs = read_jsonl(dirty, policy=IngestPolicy(
        mode="quarantine", max_bad_share=1.0,
        quarantine_path=tmp_path / "rejects.jsonl",
    ))
    assert logs.ingest_report.n_bad > 0

    engine = AutoSens(AutoSensConfig(seed=5), degrade=DegradePolicy())
    curves = engine.curves_by_action(logs)
    for curve in curves.values():
        assert np.isfinite(curve.nlp[curve.valid]).all()
