"""Chaos tests for the supervision layer (PR 4).

The contract: a run with an injected stalled worker and an injected
memory-hogged, memory-pressured sweep still *completes*, every slice that
survives is byte-identical to a clean run's, and each intervention —
watchdog kill, memory spill — is recorded as a degradation for the run
manifest. Supervision degrades visibly; it never corrupts.
"""

import numpy as np
import pytest

import repro.obs as obs
from repro.core import AutoSens, AutoSensConfig, DegradePolicy
from repro.faults import MemoryHog, StalledTask
from repro.parallel import ProcessExecutor, SerialExecutor
from repro.runtime import MemoryGovernor, Supervisor, Watchdog
from repro.workload import owa_scenario


def _kernel(seed):
    """A deterministic per-item task, heavy enough to be worth killing."""
    return np.random.default_rng(int(seed)).normal(size=512)


def _is_item_three(x):
    return int(x) == 3


@pytest.fixture(scope="module")
def chaos_logs():
    return owa_scenario(
        seed=42, duration_days=2.0, n_users=100,
        candidates_per_user_day=60.0,
    ).generate().logs


def _clean_curves(logs):
    engine = AutoSens(AutoSensConfig(seed=5), degrade=DegradePolicy(),
                      executor=SerialExecutor())
    return engine.curves_by_period(logs)


class TestStalledWorkerChaos:
    def test_watchdog_kills_and_requeue_is_bit_identical(self, tmp_path):
        items = list(range(8))
        expected = [_kernel(i) for i in items]

        # Item 3 hangs — but only inside a pool worker, so the serial
        # requeue in the parent completes it.
        stalled = StalledTask(_kernel, _is_item_three, stall_s=60.0)
        watchdog = Watchdog(
            tmp_path / "hb", stall_timeout_s=1.0, poll_interval_s=0.2,
        )
        executor = ProcessExecutor(
            max_workers=2, chunk_size=1, watchdog=watchdog,
        )
        with obs.session(enabled=True) as ctx:
            try:
                got = executor.map_ordered(stalled, items)
            finally:
                watchdog.stop()

        # The run completed and every result — including the requeued
        # stalled item — matches the clean computation bit for bit.
        assert len(got) == len(items)
        for result, clean in zip(got, expected):
            np.testing.assert_array_equal(result, clean)
        # The intervention happened and was recorded, not silent.
        assert watchdog.kills, "the stalled worker was never killed"
        kinds = [d["kind"] for d in ctx.degradations]
        assert "watchdog_kill" in kinds


class TestMemoryChaos:
    def test_pressured_sweep_spills_and_stays_identical(self, chaos_logs,
                                                        tmp_path):
        clean = _clean_curves(chaos_logs)

        governor = MemoryGovernor(
            soft_limit_bytes=1024, hard_limit_bytes=1 << 30,
            spill_dir=tmp_path / "spill",
        )
        supervisor = Supervisor(memory_budget_mb=governor, workdir=tmp_path)
        engine = AutoSens(AutoSensConfig(seed=5), degrade=DegradePolicy(),
                          executor=SerialExecutor())
        with obs.session(enabled=True) as ctx:
            with supervisor.scope():
                pressured = engine.curves_by_period(chaos_logs)

        assert governor.n_spills > 0, "the soft limit never forced a spill"
        assert set(pressured) == set(clean)
        for period in clean:
            np.testing.assert_array_equal(
                pressured[period].nlp, clean[period].nlp
            )
            np.testing.assert_array_equal(
                pressured[period].latencies, clean[period].latencies
            )
        kinds = [d["kind"] for d in ctx.degradations]
        assert "memory_spill" in kinds

    def test_memory_hogged_slice_result_is_unchanged(self, chaos_logs):
        engine = AutoSens(AutoSensConfig(seed=5), degrade=DegradePolicy())
        clean = engine.preference_curve(chaos_logs)

        hogged_engine = AutoSens(AutoSensConfig(seed=5),
                                 degrade=DegradePolicy())
        hog = MemoryHog(hogged_engine.preference_curve, lambda _: True,
                        ballast_mb=8.0, chunk_mb=4.0)
        pressured = hog(chaos_logs)
        assert hog.n_hogs == 1
        np.testing.assert_array_equal(pressured.nlp, clean.nlp)
        np.testing.assert_array_equal(pressured.latencies, clean.latencies)


class TestCombinedChaos:
    def test_full_chaos_run_records_every_intervention(self, chaos_logs,
                                                       tmp_path):
        """One obs session, both fault classes: a stalled pool worker and
        a memory-pressured sweep. The run completes, survivors match the
        clean run, and the manifest-bound degradation list names both
        interventions."""
        clean = _clean_curves(chaos_logs)
        items = list(range(6))
        expected = [_kernel(i) for i in items]

        watchdog = Watchdog(
            tmp_path / "hb", stall_timeout_s=1.0, poll_interval_s=0.2,
        )
        governor = MemoryGovernor(
            soft_limit_bytes=1024, hard_limit_bytes=1 << 30,
            spill_dir=tmp_path / "spill",
        )
        supervisor = Supervisor(
            deadline_s=600.0, watchdog=watchdog,
            memory_budget_mb=governor, workdir=tmp_path,
        )
        stalled = StalledTask(_kernel, _is_item_three, stall_s=60.0)
        executor = ProcessExecutor(
            max_workers=2, chunk_size=1, watchdog=watchdog,
        )
        engine = AutoSens(AutoSensConfig(seed=5), degrade=DegradePolicy(),
                          executor=SerialExecutor())

        with obs.session(enabled=True) as ctx:
            with supervisor.scope():
                mapped = executor.map_ordered(stalled, items)
                curves = engine.curves_by_period(chaos_logs)

        for result, clean_item in zip(mapped, expected):
            np.testing.assert_array_equal(result, clean_item)
        assert set(curves) == set(clean)
        for period in clean:
            np.testing.assert_array_equal(
                curves[period].nlp, clean[period].nlp
            )
        kinds = {d["kind"] for d in ctx.degradations}
        assert {"watchdog_kill", "memory_spill"} <= kinds
        summary = supervisor.summary()
        assert summary["watchdog_kills"] >= 1
        assert summary["memory"]["n_spills"] >= 1
        assert summary["deadline_elapsed_s"] < 600.0
