"""Resilient ingestion: policy modes, error budget, quarantine sink."""

import json

import pytest

from repro.errors import ConfigError, IngestError, SchemaError
from repro.telemetry import (
    ActionRecord,
    IngestPolicy,
    LogStore,
    quality_report,
    read_csv,
    read_jsonl,
    write_csv,
    write_jsonl,
)


def _records(n=20):
    return [
        ActionRecord(
            time=float(i * 60),
            action="SelectMail",
            latency_ms=100.0 + i,
            user_id=f"u{i % 4}",
            user_class="business",
            success=True,
            tz_offset_hours=0.0,
        )
        for i in range(n)
    ]


@pytest.fixture()
def dirty_jsonl(tmp_path):
    """20 good rows plus 3 bad ones (garbage, NaN, missing field)."""
    path = tmp_path / "dirty.jsonl"
    write_jsonl(_records(), path)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write("{definitely not json\n")
        fh.write(json.dumps({
            "time": 50.0, "action": "Search", "latency_ms": float("nan"),
            "user_id": "u9", "user_class": "business", "success": True,
            "tz_offset_hours": 0.0,
        }) + "\n")
        fh.write('{"time": 60.0, "action": "Search"}\n')
    return path


class TestPolicyObject:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ConfigError):
            IngestPolicy(mode="yolo")

    def test_quarantine_requires_path(self):
        with pytest.raises(ConfigError):
            IngestPolicy(mode="quarantine")

    def test_of_coerces_names(self, tmp_path):
        assert IngestPolicy.of(None).mode == "strict"
        assert IngestPolicy.of("lenient").mode == "lenient"
        policy = IngestPolicy.of("quarantine", tmp_path / "q.jsonl")
        assert policy.mode == "quarantine"
        assert IngestPolicy.of(policy) is policy


class TestStrict:
    def test_first_bad_row_raises_with_lineno(self, dirty_jsonl):
        with pytest.raises(SchemaError) as excinfo:
            read_jsonl(dirty_jsonl)
        assert ":21:" in str(excinfo.value)  # the garbage line

    def test_clean_file_reports_clean(self, tmp_path):
        path = tmp_path / "clean.jsonl"
        write_jsonl(_records(), path)
        logs = read_jsonl(path)
        assert logs.ingest_report.clean
        assert logs.n_skipped_rows == 0


class TestLenient:
    def test_skips_and_counts(self, dirty_jsonl):
        logs = read_jsonl(
            dirty_jsonl, policy=IngestPolicy(mode="lenient", max_bad_share=0.5)
        )
        assert len(logs) == 20
        report = logs.ingest_report
        assert report.n_bad == 3
        assert logs.n_skipped_rows == 3
        assert report.reasons["json-decode"] == 1
        assert report.reasons["non-finite"] == 1
        assert report.reasons["schema"] == 1
        assert [b.lineno for b in report.sample] == [21, 22, 23]

    def test_legacy_strict_false_still_skips(self, dirty_jsonl):
        logs = read_jsonl(dirty_jsonl, strict=False)
        assert len(logs) == 20
        # The satellite fix: the skip count is no longer silently lost.
        assert logs.n_skipped_rows == 3

    def test_error_budget_enforced(self, dirty_jsonl):
        policy = IngestPolicy(mode="lenient", max_bad_share=0.01)
        with pytest.raises(IngestError) as excinfo:
            read_jsonl(dirty_jsonl, policy=policy)
        report = excinfo.value.report
        assert report is not None
        assert report.n_bad == 3
        assert not report.within_budget


class TestQuarantine:
    def test_bad_rows_land_in_the_sink(self, dirty_jsonl, tmp_path):
        sink = tmp_path / "rejects.jsonl"
        policy = IngestPolicy(
            mode="quarantine", max_bad_share=0.5, quarantine_path=sink
        )
        logs = read_jsonl(dirty_jsonl, policy=policy)
        assert len(logs) == 20
        entries = [json.loads(line) for line in sink.read_text().splitlines()]
        assert len(entries) == 3
        assert entries[0]["lineno"] == 21
        assert entries[0]["reason"] == "json-decode"
        assert entries[1]["reason"] == "non-finite"
        assert entries[2]["reason"] == "schema"
        assert all(e["source"].endswith("dirty.jsonl") for e in entries)

    def test_clean_read_writes_no_sink(self, tmp_path):
        path = tmp_path / "clean.jsonl"
        write_jsonl(_records(), path)
        sink = tmp_path / "rejects.jsonl"
        read_jsonl(path, policy=IngestPolicy(
            mode="quarantine", quarantine_path=sink))
        assert not sink.exists()


class TestCsv:
    def test_lenient_skips_bad_values(self, tmp_path):
        path = tmp_path / "logs.csv"
        write_csv(_records(5), path)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("oops,SelectMail,not-a-number,u1,business,true,0\n")
        logs = read_csv(
            path, policy=IngestPolicy(mode="lenient", max_bad_share=0.5)
        )
        assert len(logs) == 5
        assert logs.n_skipped_rows == 1

    def test_missing_header_column_always_fatal(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time,action\n1.0,SelectMail\n")
        for policy in (None, IngestPolicy(mode="lenient", max_bad_share=1.0)):
            with pytest.raises(SchemaError):
                read_csv(path, policy=policy)


class TestQualityIntegration:
    def test_quality_report_surfaces_ingest(self, dirty_jsonl):
        logs = read_jsonl(
            dirty_jsonl, policy=IngestPolicy(mode="lenient", max_bad_share=0.5)
        )
        report = quality_report(logs)
        assert report.ingest is logs.ingest_report
        messages = [f.message for f in report.flags]
        assert any("rejected" in m for m in messages)

    def test_in_memory_store_has_no_report(self):
        logs = LogStore.from_records(_records())
        assert logs.ingest_report is None
        assert logs.n_skipped_rows == 0


class TestQuarantineAtomicity:
    """The crash-safety contract of the quarantine sink (PR 4)."""

    def _sink(self, dirty_jsonl, tmp_path):
        sink = tmp_path / "rejects.jsonl"
        policy = IngestPolicy(
            mode="quarantine", max_bad_share=0.5, quarantine_path=sink
        )
        read_jsonl(dirty_jsonl, policy=policy)
        return sink

    def test_each_record_lands_in_one_write(self, dirty_jsonl, tmp_path,
                                            monkeypatch):
        import os as _os

        from repro.telemetry import ingest as ingest_mod

        writes = []
        real_write = _os.write

        def spy(fd, data):
            writes.append(bytes(data))
            return real_write(fd, data)

        monkeypatch.setattr(ingest_mod.os, "write", spy)
        self._sink(dirty_jsonl, tmp_path)
        assert len(writes) == 3  # one write per quarantined row
        for chunk in writes:
            assert chunk.endswith(b"\n")
            json.loads(chunk)  # each write is one complete JSON line

    def test_read_quarantine_round_trips_a_clean_file(self, dirty_jsonl,
                                                      tmp_path):
        from repro.telemetry import read_quarantine

        sink = self._sink(dirty_jsonl, tmp_path)
        records = read_quarantine(sink)
        assert [r["reason"] for r in records] == [
            "json-decode", "non-finite", "schema",
        ]

    def test_torn_trailing_record_is_dropped(self, dirty_jsonl, tmp_path):
        from repro.telemetry import read_quarantine

        sink = self._sink(dirty_jsonl, tmp_path)
        # Simulate the writer dying mid-final-record: truncate the file
        # inside the last line.
        raw = sink.read_bytes()
        sink.write_bytes(raw[: len(raw) - 20])
        records = read_quarantine(sink)
        assert len(records) == 2  # only the torn trailing record is lost
        assert [r["reason"] for r in records] == ["json-decode", "non-finite"]

    def test_mid_file_tear_is_fatal(self, dirty_jsonl, tmp_path):
        from repro.telemetry import read_quarantine

        sink = self._sink(dirty_jsonl, tmp_path)
        lines = sink.read_text().splitlines()
        lines[1] = lines[1][:10]  # tear a NON-trailing record
        sink.write_text("\n".join(lines) + "\n")
        with pytest.raises(IngestError):
            read_quarantine(sink)

    def test_torn_sink_does_not_poison_reingestion(self, dirty_jsonl,
                                                   tmp_path):
        from repro.telemetry import read_quarantine

        sink = self._sink(dirty_jsonl, tmp_path)
        raw = sink.read_bytes()
        sink.write_bytes(raw[: len(raw) - 5])
        # Surviving quarantined rows can still be inspected and the
        # original source re-read through a fresh quarantine pass.
        survivors = read_quarantine(sink)
        assert all("raw" in r for r in survivors)
        logs = read_jsonl(dirty_jsonl, policy=IngestPolicy(
            mode="quarantine", max_bad_share=0.5, quarantine_path=sink
        ))
        assert len(logs) == 20
        assert len(read_quarantine(sink)) == 3  # sink rewritten whole
