"""Execution-level fault wrappers: StalledTask and MemoryHog."""

import pickle

import pytest

from repro.faults import MemoryHog, StalledTask


def _double(x):
    return x * 2


def _is_odd(x):
    return x % 2 == 1


class TestStalledTask:
    def test_unselected_items_run_normally(self):
        sleeps = []
        stalled = StalledTask(_double, _is_odd, stall_s=100.0,
                              sleep=sleeps.append)
        assert stalled(4) == 8
        assert sleeps == []

    def test_parent_process_never_stalls_by_default(self):
        # only_in_worker=True: this process built the wrapper, so even a
        # selected item completes — the serial requeue path must succeed.
        sleeps = []
        stalled = StalledTask(_double, _is_odd, stall_s=100.0,
                              sleep=sleeps.append)
        assert stalled(3) == 6
        assert sleeps == []

    def test_stalls_when_worker_semantics_forced_off(self):
        import time

        stalled = StalledTask(_double, _is_odd, stall_s=0.05,
                              only_in_worker=False)
        t0 = time.monotonic()
        assert stalled(3) == 6  # returns after the bounded stall
        assert time.monotonic() - t0 >= 0.05

    def test_simulated_worker_pid_stalls(self):
        import time

        stalled = StalledTask(_double, _is_odd, stall_s=0.05)
        stalled.spawn_pid = -1  # pretend another process built it
        t0 = time.monotonic()
        assert stalled(3) == 6
        assert time.monotonic() - t0 >= 0.05  # the stall path ran

    def test_pickle_round_trip_preserves_semantics(self):
        stalled = StalledTask(_double, _is_odd, stall_s=0.01,
                              sleep=lambda s: None)
        clone = pickle.loads(pickle.dumps(stalled))
        assert clone.spawn_pid == stalled.spawn_pid
        assert clone.stall_s == stalled.stall_s
        assert clone(4) == 8  # unselected: runs clean in any process

    def test_mirrors_wrapped_identity(self):
        stalled = StalledTask(_double, _is_odd)
        assert stalled.__qualname__ == "_double"
        assert stalled.__module__ == _double.__module__


class TestMemoryHog:
    def test_unselected_items_do_not_hog(self):
        hog = MemoryHog(_double, _is_odd, ballast_mb=1.0)
        assert hog(4) == 8
        assert hog.n_hogs == 0

    def test_selected_items_hog_but_results_are_unchanged(self):
        hog = MemoryHog(_double, _is_odd, ballast_mb=2.0, chunk_mb=1.0)
        assert hog(3) == 6
        assert hog(5) == 10
        assert hog.n_hogs == 2

    def test_result_matches_uninjected_run(self):
        import numpy as np

        def kernel(seed):
            return np.random.default_rng(seed).normal(size=256)

        hog = MemoryHog(kernel, lambda s: True, ballast_mb=1.0)
        np.testing.assert_array_equal(hog(7), kernel(7))

    def test_ballast_is_transient(self):
        hog = MemoryHog(_double, _is_odd, ballast_mb=1.0)
        hog(3)
        # Nothing retained on the wrapper besides counters.
        assert not any(
            isinstance(v, list) and v for v in vars(hog).values()
        )

    def test_mirrors_wrapped_identity(self):
        hog = MemoryHog(_double, _is_odd)
        assert hog.__qualname__ == "_double"


class TestFaultsExports:
    def test_package_exports_task_faults(self):
        import repro.faults as faults

        assert "StalledTask" in faults.__all__
        assert "MemoryHog" in faults.__all__
