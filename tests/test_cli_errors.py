"""CLI error taxonomy: typed exit codes and the ingestion flags."""

import json

import pytest

from repro.cli.main import _exit_code_for, main
from repro.errors import (
    CircuitOpenError,
    ConfigError,
    DeadlineExceededError,
    EmptyDataError,
    IngestError,
    InsufficientDataError,
    MemoryBudgetError,
    PrivacyError,
    ReproError,
    SchemaError,
    TaskFailedError,
)


@pytest.fixture()
def dirty_log(tmp_path):
    """A small valid log with a burst of bad lines appended."""
    path = tmp_path / "dirty.jsonl"
    main(["generate", "--scenario", "owa", "--seed", "9",
          "--days", "1", "--users", "60", "--out", str(path)])
    with open(path, "a", encoding="utf-8") as fh:
        fh.write("{broken line\n")
        fh.write('{"time": 1.0}\n')
    return path


class TestExitCodeMapping:
    @pytest.mark.parametrize("exc,code", [
        (ConfigError("x"), 2),
        (SchemaError("x"), 3),
        (IngestError("x"), 4),
        (EmptyDataError("x"), 5),
        (InsufficientDataError("x"), 5),
        (PrivacyError("x"), 6),
        (TaskFailedError("t", 3), 7),
        (DeadlineExceededError("x"), 8),
        (CircuitOpenError("dep"), 9),
        (MemoryBudgetError("x"), 10),
        (ReproError("x"), 1),
    ])
    def test_each_class_has_its_code(self, exc, code):
        assert _exit_code_for(exc) == code


class TestTypedExits:
    def test_schema_error_exits_3(self, dirty_log, capsys):
        assert main(["analyze", str(dirty_log)]) == 3
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert len(err.strip().splitlines()) == 1  # one line, no traceback

    def test_ingest_error_exits_4(self, dirty_log, capsys):
        assert main(["analyze", str(dirty_log),
                     "--on-bad-rows", "lenient",
                     "--max-bad-share", "0.0000001"]) == 4
        assert "error budget" in capsys.readouterr().err

    def test_config_error_exits_2(self, tmp_path, capsys):
        # quarantine mode without a sink path is a config error.
        path = tmp_path / "x.jsonl"
        path.write_text("")
        assert main(["quality", str(path),
                     "--on-bad-rows", "quarantine"]) == 2
        assert "quarantine" in capsys.readouterr().err

    def test_empty_data_exits_5(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["analyze", str(path)]) == 5


class TestIngestFlags:
    def test_lenient_analyze_succeeds_and_reports(self, dirty_log, capsys):
        status = main(["analyze", str(dirty_log), "--on-bad-rows", "lenient"])
        assert status == 0
        captured = capsys.readouterr()
        assert "rejected" in captured.err   # the one-line ingest note
        assert "NLP" in captured.out

    def test_quarantine_analyze_writes_sink(self, dirty_log, tmp_path, capsys):
        sink = tmp_path / "rejects.jsonl"
        status = main(["analyze", str(dirty_log),
                       "--on-bad-rows", "quarantine",
                       "--quarantine-path", str(sink)])
        assert status == 0
        entries = [json.loads(line) for line in sink.read_text().splitlines()]
        assert len(entries) == 2
        assert {e["reason"] for e in entries} == {"json-decode", "schema"}

    def test_quality_shows_ingest_rows(self, dirty_log, capsys):
        main(["quality", str(dirty_log), "--on-bad-rows", "lenient"])
        out = capsys.readouterr().out
        assert "rows rejected" in out
        assert "rejected[json-decode]" in out

    def test_preflight_accepts_flags(self, dirty_log, capsys):
        status = main(["preflight", str(dirty_log), "--on-bad-rows", "lenient"])
        assert status in (0, 1)  # readiness depends on the data, not a crash
        assert "check" in capsys.readouterr().out


@pytest.fixture()
def clean_log(tmp_path):
    """A small valid log for the supervision-flag tests."""
    path = tmp_path / "clean.jsonl"
    main(["generate", "--scenario", "owa", "--seed", "9",
          "--days", "1", "--users", "60", "--out", str(path)])
    return path


class TestSupervisionExits:
    def test_deadline_exceeded_exits_8(self, clean_log, capsys):
        # A sub-microsecond budget expires before the first cooperative
        # checkpoint; analyze (no degrade policy) propagates the error.
        status = main(["analyze", str(clean_log), "--deadline-s", "0.000001"])
        assert status == 8
        err = capsys.readouterr().err
        assert "deadline" in err and len(err.strip().splitlines()) == 1

    def test_memory_budget_exits_10(self, clean_log, capsys):
        # A microscopic budget refuses the slice's working set outright.
        status = main(["analyze", str(clean_log),
                       "--memory-budget-mb", "0.001"])
        assert status == 10
        assert "budget" in capsys.readouterr().err

    def test_circuit_open_maps_to_9(self):
        from repro.runtime import CircuitBreaker

        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=60.0)
        with pytest.raises(OSError):
            breaker.call(_boom)
        with pytest.raises(CircuitOpenError) as info:
            breaker.call(_boom)
        assert _exit_code_for(info.value) == 9

    def test_generous_budgets_run_clean(self, clean_log, capsys):
        status = main(["analyze", str(clean_log), "--deadline-s", "600",
                       "--memory-budget-mb", "4096", "--breaker"])
        assert status == 0
        assert "NLP" in capsys.readouterr().out


def _boom():
    raise OSError("dependency down")


class TestExperimentCheckpointFlag:
    def test_checkpoint_dir_round_trip(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        args = ["experiment", "table1", "--scale", "small",
                "--checkpoint-dir", str(ckpt), "--no-plots"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert ckpt.exists() and list(ckpt.iterdir())
        assert main(args) == 0  # resumed from the journal
        assert capsys.readouterr().out == first
