"""Shared fixtures.

Telemetry generation is the expensive part of most tests, so moderately
sized workloads are generated once per session and shared read-only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AutoSens, AutoSensConfig
from repro.telemetry import ActionRecord, LogStore
from repro.workload import conditioning_scenario, owa_scenario


@pytest.fixture(scope="session")
def owa_result():
    """A medium OWA workload shared across the suite (read-only)."""
    scenario = owa_scenario(seed=1234, duration_days=5.0, n_users=300,
                            candidates_per_user_day=120.0)
    return scenario.generate()


@pytest.fixture(scope="session")
def owa_logs(owa_result):
    return owa_result.logs


@pytest.fixture(scope="session")
def conditioning_result():
    scenario = conditioning_scenario(seed=4321, duration_days=6.0,
                                     n_users=400,
                                     candidates_per_user_day=100.0)
    return scenario.generate()


@pytest.fixture(scope="session")
def engine():
    return AutoSens(AutoSensConfig(seed=99))


@pytest.fixture()
def tiny_logs():
    """A deterministic 12-row store for unit tests of slicing/IO."""
    records = []
    for i in range(12):
        records.append(ActionRecord(
            time=float(i * 600),
            action="SelectMail" if i % 2 == 0 else "Search",
            latency_ms=100.0 + 10.0 * i,
            user_id=f"user-{i % 3}",
            user_class="business" if i % 3 else "consumer",
            success=(i != 5),
            tz_offset_hours=0.0,
        ))
    return LogStore.from_records(records)


@pytest.fixture()
def rng():
    return np.random.default_rng(7)
