"""Tests for the telemetry generator and scenarios."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.types import ActionType
from repro.workload import (
    GeneratorConfig,
    PopulationConfig,
    TelemetryGenerator,
    generate_telemetry,
    owa_scenario,
)
from repro.workload.scenarios import (
    SCENARIOS,
    conditioning_scenario,
    flat_preference_scenario,
    timeofday_scenario,
    two_month_scenario,
    websearch_scenario,
)


@pytest.fixture(scope="module")
def small_result():
    config = GeneratorConfig(
        duration_days=2.0, candidates_per_user_day=60.0,
        population=PopulationConfig(n_users=120),
    )
    return TelemetryGenerator(config=config).generate(rng=5)


class TestGenerator:
    def test_produces_logs(self, small_result):
        assert len(small_result.logs) > 1000
        assert small_result.n_candidates >= small_result.n_accepted

    def test_sorted_by_time(self, small_result):
        assert np.all(np.diff(small_result.logs.times) >= 0)

    def test_all_action_types_present(self, small_result):
        assert set(small_result.logs.action_names()) == {
            a.value for a in ActionType
        }

    def test_classes_present(self, small_result):
        assert set(small_result.logs.class_names()) == {"business", "consumer"}

    def test_times_in_window(self, small_result):
        assert small_result.logs.times.min() >= 0.0
        assert small_result.logs.times.max() < 2.0 * 86400.0

    def test_latencies_positive(self, small_result):
        assert np.all(small_result.logs.latencies_ms > 0)

    def test_error_rate_applied(self, small_result):
        failures = 1.0 - small_result.logs.success.mean()
        assert 0.003 < failures < 0.03  # config default 1%

    def test_deterministic_with_seed(self):
        config = GeneratorConfig(duration_days=0.5,
                                 population=PopulationConfig(n_users=40))
        a = TelemetryGenerator(config=config).generate(rng=9)
        b = TelemetryGenerator(config=config).generate(rng=9)
        assert len(a.logs) == len(b.logs)
        assert np.allclose(a.logs.latencies_ms, b.logs.latencies_ms)

    def test_different_seeds_differ(self):
        config = GeneratorConfig(duration_days=0.5,
                                 population=PopulationConfig(n_users=40))
        a = TelemetryGenerator(config=config).generate(rng=1)
        b = TelemetryGenerator(config=config).generate(rng=2)
        assert len(a.logs) != len(b.logs) or not np.allclose(
            a.logs.latencies_ms[:100], b.logs.latencies_ms[:100]
        )

    def test_acceptance_rate_sane(self, small_result):
        assert 0.1 < small_result.acceptance_rate < 0.9

    def test_diurnal_activity_visible(self, small_result):
        hours = (small_result.logs.times % 86400.0) / 3600.0
        day = ((hours >= 10) & (hours < 16)).sum()
        night = ((hours >= 1) & (hours < 7)).sum()
        assert day > 2 * night

    def test_preference_bias_visible(self, small_result):
        """Actions during slow moments are rarer than availability implies.

        Compared within the daytime plateau (10:00-16:00) so the diurnal
        activity confounder cannot mask the preference effect, while the
        band stays wide enough that one relocated congestion incident
        cannot flip the comparison.
        """
        logs = small_result.logs
        grid = small_result.grid
        action_hours = (logs.times % 86400.0) / 3600.0
        grid_hours = (grid.times % 86400.0) / 3600.0
        band_actions = (action_hours >= 10.0) & (action_hours < 16.0)
        band_grid = (grid_hours >= 10.0) & (grid_hours < 16.0)
        level_at_actions = grid.level_at(logs.times[band_actions])
        assert level_at_actions.mean() < grid.levels_ms[band_grid].mean()

    def test_level_mode_runs(self):
        config = GeneratorConfig(duration_days=0.5, response_mode="level",
                                 population=PopulationConfig(n_users=40))
        result = TelemetryGenerator(config=config).generate(rng=3)
        assert len(result.logs) > 100

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            GeneratorConfig(duration_days=0.0)
        with pytest.raises(ConfigError):
            GeneratorConfig(response_mode="psychic")
        with pytest.raises(ConfigError):
            GeneratorConfig(error_rate=1.0)

    def test_convenience_wrapper(self):
        result = generate_telemetry(
            seed=4,
            config=GeneratorConfig(duration_days=0.25,
                                   population=PopulationConfig(n_users=30)),
        )
        assert len(result.logs) > 0


class TestScenarios:
    def test_registry_complete(self):
        assert set(SCENARIOS) == {
            "owa", "owa-timeofday", "owa-two-months", "owa-conditioning",
            "owa-flat", "owa-weekly", "owa-global", "owa-queue", "websearch",
        }

    def test_all_scenarios_generate(self):
        for name, builder in SCENARIOS.items():
            scenario = builder(seed=3)
            small = scenario.scaled(duration_days=0.25, n_users=30,
                                    candidates_per_user_day=40.0)
            result = small.generate()
            assert len(result.logs) > 0, name

    def test_scaled_does_not_mutate(self):
        scenario = owa_scenario(seed=1)
        smaller = scenario.scaled(n_users=10)
        assert scenario.config.population.n_users != 10
        assert smaller.config.population.n_users == 10

    def test_timeofday_has_period_exponents(self):
        assert timeofday_scenario().ground_truth.period_exponents

    def test_flat_scenario_flat_truth(self):
        truth = flat_preference_scenario().ground_truth
        curve = truth.curve_for("SelectMail", "business")
        values = curve(np.linspace(100, 2500, 50))
        assert np.allclose(values, 1.0)

    def test_conditioning_scenario_gamma(self):
        scenario = conditioning_scenario()
        assert scenario.config.population.conditioning_gamma > 0

    def test_two_month_duration(self):
        assert two_month_scenario().config.duration_days == 60.0

    def test_websearch_actions(self):
        result = websearch_scenario(seed=2).scaled(
            duration_days=0.25, n_users=30).generate()
        assert "Query" in result.logs.action_names()

    def test_seed_override(self):
        scenario = owa_scenario(seed=1).scaled(duration_days=0.25, n_users=30)
        a = scenario.generate(seed=5)
        b = scenario.generate(seed=5)
        assert np.allclose(a.logs.latencies_ms, b.logs.latencies_ms)


class TestLatencyBackends:
    def test_queue_backend_generates(self):
        from repro.workload.scenarios import queue_scenario

        result = queue_scenario(seed=4).scaled(
            duration_days=0.5, n_users=40).generate()
        assert len(result.logs) > 0
        assert result.incident_windows == []

    def test_incident_windows_surface_in_result(self):
        from repro.workload import IncidentPlan, LoadSpike
        from repro.workload.scenarios import queue_scenario

        scenario = queue_scenario(
            seed=4,
            incident_plan=IncidentPlan(specs=(LoadSpike(start_frac=0.5),)),
        ).scaled(duration_days=1.0, n_users=40)
        result = scenario.generate()
        assert len(result.incident_windows) == 1
        assert result.incident_windows[0].scenario == "load-spike"

    def test_backend_validation(self):
        with pytest.raises(ConfigError):
            GeneratorConfig(latency_backend="banana")

    def test_incidents_require_queue_backend(self):
        from repro.workload import IncidentPlan, LoadSpike

        with pytest.raises(ConfigError):
            GeneratorConfig(
                latency_backend="ou",
                incident_plan=IncidentPlan(specs=(LoadSpike(),)),
            )

    def test_with_latency_backend_round_trip(self):
        scenario = owa_scenario(seed=1).with_latency_backend("queue")
        assert scenario.config.latency_backend == "queue"
        back = scenario.with_latency_backend("ou")
        assert back.config.latency_backend == "ou"

    def test_backends_share_population(self):
        # Same seed, different latency backend: the user population and
        # candidate schedule are identical; only latencies change.
        base = owa_scenario(seed=6).scaled(duration_days=0.5, n_users=40)
        ou = base.generate()
        queue = base.with_latency_backend("queue").generate()
        assert ou.logs.n_users() == queue.logs.n_users()
        assert abs(len(ou.logs) - len(queue.logs)) < 0.2 * len(ou.logs)
