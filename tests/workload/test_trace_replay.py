"""Tests for latency-trace replay."""

import numpy as np
import pytest

from repro.errors import ConfigError, SchemaError
from repro.workload import (
    generate_from_trace,
    owa_scenario,
    read_level_trace,
    write_level_trace,
)
from repro.workload.latency_model import LatencyGrid, LatencyModel


@pytest.fixture()
def recorded_grid():
    return LatencyModel().sample_grid(86400.0, rng=9)


class TestTraceIO:
    def test_round_trip(self, recorded_grid, tmp_path):
        path = tmp_path / "trace.csv"
        n = write_level_trace(recorded_grid, path)
        assert n == recorded_grid.levels_ms.size
        trace = read_level_trace(path)
        assert trace.dt == pytest.approx(recorded_grid.dt)
        assert np.allclose(trace.levels_ms[:100],
                           recorded_grid.levels_ms[:100], rtol=1e-3)

    def test_stride_downsamples(self, recorded_grid, tmp_path):
        path = tmp_path / "trace.csv"
        n = write_level_trace(recorded_grid, path, stride=6)
        assert n == int(np.ceil(recorded_grid.levels_ms.size / 6))
        trace = read_level_trace(path)
        assert trace.dt == pytest.approx(60.0)

    def test_irregular_spacing_resampled(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text(
            "time_s,level_ms\n0,100\n10,200\n25,300\n40,100\n"
        )
        trace = read_level_trace(path)
        assert trace.dt == pytest.approx(15.0)  # median spacing
        assert trace.levels_ms[0] == 100.0

    def test_missing_columns(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(SchemaError):
            read_level_trace(path)

    def test_unsorted_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time_s,level_ms\n10,100\n5,200\n")
        with pytest.raises(SchemaError):
            read_level_trace(path)

    def test_nonpositive_level_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time_s,level_ms\n0,100\n10,0\n")
        with pytest.raises(SchemaError):
            read_level_trace(path)

    def test_too_short(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time_s,level_ms\n0,100\n")
        with pytest.raises(SchemaError):
            read_level_trace(path)

    def test_bad_stride(self, recorded_grid, tmp_path):
        with pytest.raises(ConfigError):
            write_level_trace(recorded_grid, tmp_path / "x.csv", stride=0)


class TestReplay:
    def test_replayed_logs_track_trace(self, recorded_grid):
        result = generate_from_trace(recorded_grid, seed=4)
        assert len(result.logs) > 500
        # the replay must hand back the exact grid
        assert result.grid is recorded_grid
        # action times fall inside the trace span
        assert result.logs.times.min() >= recorded_grid.start
        assert result.logs.times.max() <= recorded_grid.end

    def test_deterministic(self, recorded_grid):
        a = generate_from_trace(recorded_grid, seed=4)
        b = generate_from_trace(recorded_grid, seed=4)
        assert np.allclose(a.logs.latencies_ms, b.logs.latencies_ms)

    def test_matches_synthetic_statistics(self):
        """Replaying a synthetic grid reproduces the synthetic scenario."""
        scenario = owa_scenario(seed=7, duration_days=1.0, n_users=150,
                                candidates_per_user_day=80.0)
        synthetic = scenario.generate()
        replayed = generate_from_trace(
            synthetic.grid,
            seed=7,
            config=scenario.config,
            ground_truth=scenario.ground_truth,
            action_mix=scenario.action_mix,
            activity_model=scenario.activity_model,
        )
        # identical seeds + identical grid => identical logs
        assert len(replayed.logs) == len(synthetic.logs)
        assert np.allclose(replayed.logs.latencies_ms,
                           synthetic.logs.latencies_ms)

    def test_empty_trace_span_rejected(self):
        grid = LatencyGrid(0.0, 10.0, np.array([100.0]))
        from repro.workload.trace_replay import TraceReplayGenerator

        generator = TraceReplayGenerator(grid)
        assert generator.config.duration_days > 0  # 10 s is fine
