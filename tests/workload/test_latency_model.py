"""Tests for the latency level process."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.workload.latency_model import (
    DiurnalCurve,
    IncidentConfig,
    LatencyGrid,
    LatencyModel,
    LatencyModelConfig,
)


class TestDiurnalCurve:
    def test_trough_and_peak(self):
        curve = DiurnalCurve(floor=0.5, peak=1.5, trough_hour=4.0)
        assert np.isclose(curve(np.array([4.0]))[0], 0.5)
        assert np.isclose(curve(np.array([16.0]))[0], 1.5)

    def test_periodic(self):
        curve = DiurnalCurve()
        assert np.isclose(curve(np.array([1.0]))[0], curve(np.array([25.0]))[0])

    def test_range_bounded(self):
        curve = DiurnalCurve(floor=0.75, peak=1.35)
        values = curve(np.linspace(0, 24, 200))
        assert values.min() >= 0.75 - 1e-9
        assert values.max() <= 1.35 + 1e-9

    def test_validation(self):
        with pytest.raises(ConfigError):
            DiurnalCurve(floor=-1.0)
        with pytest.raises(ConfigError):
            DiurnalCurve(floor=2.0, peak=1.0)


class TestLatencyGrid:
    def test_level_lookup(self):
        grid = LatencyGrid(start=0.0, dt=10.0, levels_ms=np.array([100.0, 200.0]))
        levels = grid.level_at(np.array([0.0, 9.9, 10.0, 100.0, -5.0]))
        assert levels.tolist() == [100.0, 100.0, 200.0, 200.0, 100.0]

    def test_end(self):
        grid = LatencyGrid(0.0, 10.0, np.ones(5))
        assert grid.end == 50.0

    def test_times(self):
        grid = LatencyGrid(100.0, 10.0, np.ones(3))
        assert grid.times.tolist() == [100.0, 110.0, 120.0]

    def test_validation(self):
        with pytest.raises(ConfigError):
            LatencyGrid(0.0, 0.0, np.ones(3))
        with pytest.raises(ConfigError):
            LatencyGrid(0.0, 1.0, np.array([]))


class TestLatencyModel:
    def test_grid_positive(self):
        model = LatencyModel()
        grid = model.sample_grid(86400.0, rng=1)
        assert np.all(grid.levels_ms > 0)
        assert grid.levels_ms.size == 8640

    def test_diurnal_shape_visible(self):
        config = LatencyModelConfig(congestion_sigma=0.05, incidents=None)
        model = LatencyModel(config)
        grid = model.sample_grid(10 * 86400.0, rng=2)
        hours = (grid.times % 86400.0) / 3600.0
        trough = grid.levels_ms[(hours >= 3) & (hours < 5)].mean()
        peak = grid.levels_ms[(hours >= 15) & (hours < 17)].mean()
        assert peak > 1.4 * trough

    def test_deterministic(self):
        model = LatencyModel()
        a = model.sample_grid(3600.0, rng=3)
        b = model.sample_grid(3600.0, rng=3)
        assert np.array_equal(a.levels_ms, b.levels_ms)

    def test_locality_present(self):
        from repro.stats.msd import msd_mad_ratio

        model = LatencyModel(LatencyModelConfig(incidents=None))
        grid = model.sample_grid(2 * 86400.0, rng=4)
        assert msd_mad_ratio(grid.levels_ms) < 0.3

    def test_incidents_add_tail(self):
        quiet = LatencyModel(LatencyModelConfig(incidents=None))
        spiky = LatencyModel(LatencyModelConfig(
            incidents=IncidentConfig(rate_per_day=10.0, severity_log_mean=1.5)
        ))
        q99_quiet = np.percentile(quiet.sample_grid(5 * 86400.0, rng=5).levels_ms, 99)
        q99_spiky = np.percentile(spiky.sample_grid(5 * 86400.0, rng=5).levels_ms, 99)
        assert q99_spiky > 1.5 * q99_quiet

    def test_incident_rate_zero_noop(self):
        config = LatencyModelConfig(incidents=IncidentConfig(rate_per_day=0.0))
        grid_a = LatencyModel(config).sample_grid(86400.0, rng=6)
        grid_b = LatencyModel(LatencyModelConfig(incidents=None)).sample_grid(86400.0, rng=6)
        assert np.allclose(grid_a.levels_ms, grid_b.levels_ms)

    def test_request_latency_jitter(self):
        model = LatencyModel()
        levels = np.full(20_000, 100.0)
        latencies = model.request_latency(levels, jitter_sigma=0.2, rng=7)
        # lognormal with mean-correcting drift: mean stays ~100
        assert abs(latencies.mean() - 100.0) < 2.0
        assert latencies.std() > 10.0

    def test_request_latency_multiplier(self):
        model = LatencyModel()
        out = model.request_latency(np.array([100.0]), multiplier=2.0,
                                    jitter_sigma=0.0, rng=8)
        assert np.isclose(out[0], 200.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            LatencyModelConfig(base_ms=0.0)
        with pytest.raises(ConfigError):
            LatencyModel().sample_grid(0.0)
        with pytest.raises(ConfigError):
            IncidentConfig(rate_per_day=-1.0)


class TestIncidentStreamDecoupling:
    """The incident overlay draws from a dedicated derived stream, so the
    base diurnal x OU path is bit-invariant to incident settings."""

    def test_base_path_invariant_to_incident_settings(self):
        quiet = LatencyModel(LatencyModelConfig(incidents=None))
        spiky = LatencyModel(LatencyModelConfig(
            incidents=IncidentConfig(rate_per_day=8.0)
        ))
        base = quiet.sample_grid(3 * 86400.0, rng=42).levels_ms
        overlaid = spiky.sample_grid(3 * 86400.0, rng=42).levels_ms
        # Multiplicative overlay on the *same* base path: outside incident
        # windows the cells are bit-identical, never resampled.
        untouched = overlaid == base
        assert untouched.mean() > 0.5
        assert not untouched.all()  # at ~24 expected incidents, some landed

    def test_explicit_incident_rng_reproduces(self):
        config = LatencyModelConfig(incidents=IncidentConfig(rate_per_day=8.0))
        model = LatencyModel(config)
        a = model.sample_grid(86400.0, rng=9,
                              incident_rng=np.random.default_rng(123))
        b = model.sample_grid(86400.0, rng=9,
                              incident_rng=np.random.default_rng(123))
        assert np.array_equal(a.levels_ms, b.levels_ms)
        # A different incident stream rearranges the overlay only — the
        # base path underneath is untouched (cells outside both overlay
        # supports are bit-identical).
        c = model.sample_grid(86400.0, rng=9,
                              incident_rng=np.random.default_rng(321))
        base = LatencyModel(LatencyModelConfig(incidents=None)).sample_grid(
            86400.0, rng=9).levels_ms
        # Both overlays sit on the same bit-identical base path: outside
        # each stream's incident windows the cells equal the quiet run's.
        assert (a.levels_ms == base).any()
        assert (c.levels_ms == base).any()
        assert not np.array_equal(a.levels_ms, c.levels_ms)

    def test_derived_stream_does_not_consume_from_base(self):
        gen = np.random.default_rng(11)
        before = gen.bit_generator.state
        LatencyModel._derive_incident_rng(gen)
        assert gen.bit_generator.state == before
