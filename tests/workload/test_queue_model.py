"""Queueing-theory invariants for the M/G/k latency backend."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.workload.incidents import IncidentPlan, LoadSpike
from repro.workload.latency_model import LatencyModel, LatencyModelConfig
from repro.workload.queue_model import (
    QueueModel,
    QueueModelConfig,
    ServiceTimeConfig,
)

DAY = 86400.0


def _small_config(**overrides):
    defaults = dict(arrival_rate_hz=6.0, servers=3,
                    service=ServiceTimeConfig(mean_ms=150.0))
    defaults.update(overrides)
    return QueueModelConfig(**defaults)


class TestServiceTimeConfig:
    def test_lognormal_mean_matches(self):
        cfg = ServiceTimeConfig(distribution="lognormal", mean_ms=200.0)
        draws = cfg.sample(200_000, np.random.default_rng(0))
        assert abs(draws.mean() - 0.2) < 0.005

    def test_pareto_mix_mean_matches(self):
        cfg = ServiceTimeConfig(distribution="pareto-mix", mean_ms=200.0)
        draws = cfg.sample(400_000, np.random.default_rng(1))
        assert abs(draws.mean() - 0.2) < 0.01

    def test_pareto_mix_has_heavier_tail(self):
        rng_a, rng_b = np.random.default_rng(2), np.random.default_rng(2)
        light = ServiceTimeConfig(distribution="lognormal", mean_ms=150.0)
        heavy = ServiceTimeConfig(distribution="pareto-mix", mean_ms=150.0)
        a = light.sample(200_000, rng_a)
        b = heavy.sample(200_000, rng_b)
        assert (np.percentile(b, 99.9) / np.percentile(b, 50)
                > np.percentile(a, 99.9) / np.percentile(a, 50))

    def test_validation(self):
        with pytest.raises(ConfigError):
            ServiceTimeConfig(distribution="uniform")
        with pytest.raises(ConfigError):
            ServiceTimeConfig(mean_ms=0.0)
        with pytest.raises(ConfigError):
            ServiceTimeConfig(distribution="pareto-mix", tail_alpha=1.0)
        with pytest.raises(ConfigError):
            ServiceTimeConfig(distribution="pareto-mix", tail_share=1.5)


class TestStability:
    def test_unstable_config_rejected(self):
        # rho = lambda * E[S] / k: 20/s * 0.15s / 1 = 3.0 >> 1.
        with pytest.raises(ConfigError):
            QueueModelConfig(
                arrival_rate_hz=20.0, servers=1,
                service=ServiceTimeConfig(mean_ms=150.0),
            )

    def test_peak_utilization_accounts_for_diurnal(self):
        cfg = _small_config()
        # Diurnal peak multiplies the arrival rate; the margin check uses it.
        assert cfg.peak_utilization() > (
            cfg.arrival_rate_hz * cfg.service.mean_s() / cfg.servers
        )
        assert cfg.peak_utilization() < cfg.stability_margin

    def test_utilization_below_one_in_simulation(self):
        result = QueueModel(_small_config()).simulate(DAY, rng=3)
        assert 0.0 < result.utilization() < 1.0


class TestLittlesLaw:
    def test_mean_occupancy_matches_lambda_times_sojourn(self):
        # L = lambda * W must hold for the event-integrated occupancy on a
        # long window regardless of service distribution or server count.
        result = QueueModel(_small_config(servers=2, arrival_rate_hz=4.0)).simulate(
            3 * DAY, rng=4
        )
        assert result.arrival_times.size > 100_000
        assert abs(result.little_law_ratio() - 1.0) < 0.15

    def test_littles_law_pareto_mix(self):
        cfg = _small_config(
            service=ServiceTimeConfig(distribution="pareto-mix", mean_ms=150.0)
        )
        result = QueueModel(cfg).simulate(3 * DAY, rng=5)
        assert abs(result.little_law_ratio() - 1.0) < 0.15


class TestTailBehavior:
    def test_queue_tail_heavier_than_ou(self):
        # The queue's level path inherits burst-driven waits: p99/p50 of
        # per-request latency beats the lognormal-jitter OU backend's.
        queue = QueueModel(_small_config()).simulate(2 * DAY, rng=6)
        q_lat = queue.latency_ms
        ou_grid = LatencyModel(LatencyModelConfig(incidents=None)).sample_grid(
            2 * DAY, rng=6
        )
        ou_lat = LatencyModel().request_latency(
            ou_grid.levels_ms, jitter_sigma=0.35, rng=6
        )
        q_ratio = np.percentile(q_lat, 99) / np.percentile(q_lat, 50)
        ou_ratio = np.percentile(ou_lat, 99) / np.percentile(ou_lat, 50)
        assert q_ratio > ou_ratio

    def test_latencies_include_overhead_floor(self):
        cfg = _small_config(overhead_ms=90.0)
        result = QueueModel(cfg).simulate(DAY, rng=7)
        assert result.latency_ms.min() >= cfg.overhead_ms


class TestDeterminism:
    def test_bit_identical_reseed(self):
        model = QueueModel(_small_config())
        a = model.simulate(DAY, rng=8)
        b = model.simulate(DAY, rng=8)
        assert np.array_equal(a.arrival_times, b.arrival_times)
        assert np.array_equal(a.wait_s, b.wait_s)
        assert np.array_equal(a.service_s, b.service_s)
        assert np.array_equal(a.server_ids, b.server_ids)

    def test_grid_bit_identical_reseed(self):
        model = QueueModel(_small_config())
        a = model.sample_grid(DAY, rng=9)
        b = model.sample_grid(DAY, rng=9)
        assert np.array_equal(a.levels_ms, b.levels_ms)

    def test_neutral_profile_matches_no_profile(self):
        # Draw-consumption invariance: a neutral incident profile must be
        # bit-identical to running with no profile at all.
        cfg = _small_config(grid_dt_s=10.0)
        model = QueueModel(cfg)
        n_cells = int(np.ceil(DAY / cfg.grid_dt_s))
        neutral = IncidentPlan().build(0.0, cfg.grid_dt_s, n_cells)
        a = model.simulate(DAY, rng=10)
        b = model.simulate(DAY, rng=10, profile=neutral)
        assert np.array_equal(a.wait_s, b.wait_s)
        assert np.array_equal(a.latency_ms, b.latency_ms)


class TestIncidentPhysics:
    def test_load_spike_raises_levels_inside_window(self):
        cfg = _small_config(grid_dt_s=10.0)
        model = QueueModel(cfg)
        n_cells = int(np.ceil(DAY / cfg.grid_dt_s))
        plan = IncidentPlan(
            specs=(LoadSpike(start_frac=0.5, duration_s=7200.0, peak_mult=3.0),),
            seed=0,
        )
        profile = plan.build(0.0, cfg.grid_dt_s, n_cells)
        assert len(profile.windows) == 1
        window = profile.windows[0]
        clean = model.sample_grid(DAY, rng=11)
        spiked = model.sample_grid(DAY, rng=11, profile=profile)
        inside = (clean.times >= window.start_s) & (clean.times < window.end_s)
        assert spiked.levels_ms[inside].mean() > 1.5 * clean.levels_ms[inside].mean()

    def test_grid_shape_compatible_with_latency_grid(self):
        cfg = _small_config(grid_dt_s=10.0)
        grid = QueueModel(cfg).sample_grid(DAY, rng=12)
        assert grid.levels_ms.size == int(np.ceil(DAY / cfg.grid_dt_s))
        assert np.all(np.isfinite(grid.levels_ms))
        assert np.all(grid.levels_ms > 0)
        # LatencyGrid API used by the generator:
        levels = grid.level_at(np.array([0.0, DAY / 2, DAY - 1.0]))
        assert levels.shape == (3,)
