"""Degradation operators: identity at zero, nesting, seeded determinism.

The sensitivity suite's contracts (see ``src/repro/workload/degradations.py``):
level zero is the exact identity, selections nest monotonically across the
level ladder, each spec in a plan draws from its own derived stream, and
thinning can only ever *remove* rows — never invent them.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.stats.rng import RngFactory
from repro.telemetry.log_store import LogStore
from repro.workload.degradations import (
    DEGRADATION_BUILDERS,
    DegradationPlan,
    DiurnalThinning,
    HeavyUserSkew,
    InformativeMissingness,
)


def _store(n=600, seed=0, n_users=20):
    rng = np.random.default_rng(seed)
    return LogStore.from_coded_arrays(
        times=np.sort(rng.uniform(0.0, 2 * 86400.0, n)),
        latencies_ms=rng.lognormal(5.5, 0.8, n),
        action_codes=np.zeros(n, dtype=np.int32),
        action_vocab=["open-message"],
        user_codes=rng.integers(0, n_users, n).astype(np.int32),
        user_vocab=[f"u{i:03d}" for i in range(n_users)],
        class_codes=np.zeros(n, dtype=np.int32),
        class_vocab=["consumer"],
    )


def _columns(logs):
    return (logs.times, logs.latencies_ms, logs.action_codes,
            logs.user_codes, logs.class_codes, logs.success, logs.tz_offsets)


class TestSpecValidation:
    @pytest.mark.parametrize("level", [-0.1, 1.01, 2.0])
    def test_out_of_range_level_rejected(self, level):
        with pytest.raises(ConfigError):
            DiurnalThinning(level=level)

    def test_bad_peak_hour_rejected(self):
        with pytest.raises(ConfigError):
            DiurnalThinning(level=0.5, peak_hour=24.0)

    def test_builders_cover_every_operator(self):
        assert set(DEGRADATION_BUILDERS) == {
            "diurnal-thinning", "mnar-latency", "user-skew",
        }
        for name, build in DEGRADATION_BUILDERS.items():
            spec = build(0.5)
            assert spec.level == 0.5

    def test_name_excludes_level(self):
        # Same stream name at every level — that is what makes the level
        # ladder's selections nested.
        assert DiurnalThinning(level=0.2).name == DiurnalThinning(level=0.9).name


class TestZeroLevelIdentity:
    @pytest.mark.parametrize("operator", sorted(DEGRADATION_BUILDERS))
    def test_level_zero_is_identity(self, operator):
        logs = _store()
        spec = DEGRADATION_BUILDERS[operator](0.0)
        out = spec.apply(logs, RngFactory(3).stream("t"))
        for a, b in zip(_columns(out), _columns(logs)):
            np.testing.assert_array_equal(a, b)

    def test_plan_of_zero_levels_is_identity(self):
        logs = _store()
        plan = DegradationPlan(
            specs=tuple(DEGRADATION_BUILDERS[n](0.0)
                        for n in sorted(DEGRADATION_BUILDERS)),
            seed=11,
        )
        out = plan.apply(logs)
        for a, b in zip(_columns(out), _columns(logs)):
            np.testing.assert_array_equal(a, b)


class TestDeterminismAndNesting:
    @pytest.mark.parametrize("operator", sorted(DEGRADATION_BUILDERS))
    def test_same_seed_same_output(self, operator):
        logs = _store()
        spec = DEGRADATION_BUILDERS[operator](0.6)
        out1 = spec.apply(logs, RngFactory(5).stream("x"))
        out2 = spec.apply(logs, RngFactory(5).stream("x"))
        for a, b in zip(_columns(out1), _columns(out2)):
            np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("operator", ["diurnal-thinning", "mnar-latency"])
    def test_drops_nest_across_levels(self, operator):
        # One draw per row at a level-independent stream position: the rows
        # surviving level 0.8 are a subset of those surviving level 0.4.
        logs = _store()
        mild = DEGRADATION_BUILDERS[operator](0.4).apply(
            logs, RngFactory(5).stream("x"))
        harsh = DEGRADATION_BUILDERS[operator](0.8).apply(
            logs, RngFactory(5).stream("x"))
        assert len(harsh) <= len(mild) <= len(logs)
        assert set(harsh.times.tolist()) <= set(mild.times.tolist())

    def test_plan_streams_are_per_spec(self):
        # Adding a second spec must not move the first spec's draws.
        logs = _store()
        alone = DegradationPlan(
            specs=(DiurnalThinning(level=0.5),), seed=9).apply(logs)
        first_of_two = DegradationPlan(
            specs=(DiurnalThinning(level=0.5), HeavyUserSkew(level=0.0)),
            seed=9).apply(logs)
        for a, b in zip(_columns(alone), _columns(first_of_two)):
            np.testing.assert_array_equal(a, b)


class TestOperatorSemantics:
    def test_thinning_prefers_the_peak(self):
        logs = _store(n=4000)
        out = DiurnalThinning(level=0.9, peak_hour=13.0).apply(
            logs, RngFactory(2).stream("t"))
        hours_in = (logs.local_times / 3600.0) % 24.0
        hours_out = (out.local_times / 3600.0) % 24.0
        peak = lambda h: ((h >= 10) & (h < 16)).mean()  # noqa: E731
        assert peak(hours_out) < peak(hours_in)

    def test_mnar_raises_mean_latency_of_dropped_rows(self):
        logs = _store(n=4000)
        out = InformativeMissingness(level=0.9).apply(
            logs, RngFactory(2).stream("m"))
        assert len(out) < len(logs)
        kept = set(out.times.tolist())
        dropped = np.array([t not in kept for t in logs.times.tolist()])
        assert (logs.latencies_ms[dropped].mean()
                > logs.latencies_ms[~dropped].mean())

    def test_user_skew_only_duplicates(self):
        logs = _store(n=2000)
        out = HeavyUserSkew(level=1.0).apply(logs, RngFactory(2).stream("s"))
        assert len(out) > len(logs)
        # Every output row exists in the input (no invented latencies), and
        # only rows gain multiplicity.
        in_rows = set(zip(logs.times.tolist(), logs.latencies_ms.tolist()))
        out_rows = set(zip(out.times.tolist(), out.latencies_ms.tolist()))
        assert out_rows == in_rows

    @given(level=st.floats(min_value=0.0, max_value=1.0),
           seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_thinning_never_inflates_any_hour_slot(self, level, seed):
        # Property: whatever the level and seed, per-hour-of-day slot counts
        # satisfy 0 <= degraded <= clean — thinning is a pure subset.
        logs = _store(n=400, seed=1)
        out = DiurnalThinning(level=level).apply(
            logs, RngFactory(seed).stream("h"))
        hours_in = ((logs.local_times / 3600.0) % 24.0).astype(int)
        hours_out = ((out.local_times / 3600.0) % 24.0).astype(int)
        clean = np.bincount(hours_in, minlength=24)
        degraded = np.bincount(hours_out, minlength=24)
        assert (degraded >= 0).all()
        assert (degraded <= clean).all()

    def test_empty_store_passes_through(self):
        empty = _store().filter(np.zeros(600, dtype=bool))
        for name in sorted(DEGRADATION_BUILDERS):
            out = DEGRADATION_BUILDERS[name](0.7).apply(
                empty, RngFactory(1).stream("e"))
            assert out.is_empty
