"""Tests for multi-region populations and the weekly scenario."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.core.alpha import slot_of_times
from repro.workload import (
    PopulationConfig,
    global_scenario,
    synthesize_population,
    weekly_scenario,
)


class TestRegions:
    def test_region_assignment_weights(self):
        config = PopulationConfig(
            n_users=3000, regions=((-5.0, 0.5), (3.0, 0.5)),
        )
        population = synthesize_population(config, rng=1)
        share = (population.tz_offsets == -5.0).mean()
        assert 0.45 < share < 0.55
        assert set(np.unique(population.tz_offsets)) == {-5.0, 3.0}

    def test_empty_regions_rejected(self):
        with pytest.raises(ConfigError):
            PopulationConfig(regions=())

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ConfigError):
            PopulationConfig(regions=((0.0, 0.0),))

    def test_global_scenario_logs_carry_tz(self):
        result = global_scenario(seed=2, duration_days=1.0, n_users=120,
                                 candidates_per_user_day=60.0).generate()
        offsets = result.logs.tz_offsets_present()
        assert set(offsets) <= {-5.0, 0.0, 8.0}
        assert len(offsets) >= 2

    def test_tz_slice(self):
        result = global_scenario(seed=2, duration_days=1.0, n_users=120,
                                 candidates_per_user_day=60.0).generate()
        tz = result.logs.tz_offsets_present()[0]
        sliced = result.logs.where(tz_offset=tz)
        assert (sliced.tz_offsets == tz).all()

    def test_activity_follows_local_time(self):
        """Each region's actions peak in *its* local daytime."""
        result = global_scenario(seed=3, duration_days=4.0, n_users=300,
                                 candidates_per_user_day=100.0).generate()
        logs = result.logs
        for tz in logs.tz_offsets_present():
            region = logs.where(tz_offset=tz, success_only=False)
            local_hours = (region.times / 3600.0 + tz) % 24.0
            day = ((local_hours >= 9) & (local_hours < 17)).mean()
            night = ((local_hours >= 1) & (local_hours < 7)).mean()
            assert day > 2 * night, f"tz={tz}"


class TestHourOfWeek:
    def test_slot_ids_span_week(self):
        times = np.array([0.0, 86400.0 * 6 + 3600.0 * 23])
        slots = slot_of_times(times, "hour-of-week")
        assert slots.tolist() == [0, 167]

    def test_tz_shifts_weekday(self):
        # 23:00 Sunday UTC with +2 offset is 01:00 Monday local
        t = np.array([86400.0 * 6 + 23 * 3600.0])
        assert slot_of_times(t, "hour-of-week", 2.0).tolist() == [1]


class TestWeeklyScenario:
    def test_weekend_latency_lower(self):
        result = weekly_scenario(seed=5, duration_days=14.0, n_users=200,
                                 candidates_per_user_day=60.0).generate()
        grid = result.grid
        day = np.floor(grid.times / 86400.0).astype(np.int64)
        weekend = (day % 7) >= 5
        assert grid.levels_ms[weekend].mean() < grid.levels_ms[~weekend].mean()

    def test_business_quieter_on_weekends(self):
        result = weekly_scenario(seed=5, duration_days=14.0, n_users=200,
                                 candidates_per_user_day=60.0).generate()
        logs = result.logs.where(user_class="business", success_only=False)
        day = np.floor(logs.times / 86400.0).astype(np.int64)
        weekend_rate = ((day % 7) >= 5).sum() / 4.0   # 4 weekend days in 14
        weekday_rate = ((day % 7) < 5).sum() / 10.0
        assert weekend_rate < 0.6 * weekday_rate
