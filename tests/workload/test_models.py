"""Tests for the activity model, population and action mixes."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.types import DayPeriod, UserClass
from repro.workload.actions import (
    ActionMix,
    ActionSpec,
    owa_action_mix,
    websearch_action_mix,
)
from repro.workload.activity_model import ActivityCurve, ActivityModel
from repro.workload.population import PopulationConfig, synthesize_population
from repro.telemetry.anonymize import is_guid_shaped


class TestActivityCurve:
    def test_peak_is_one(self):
        curve = ActivityCurve(peak_hour=13.0)
        assert np.isclose(curve(np.array([13.0]))[0], 1.0)

    def test_floor_opposite_peak(self):
        curve = ActivityCurve(night_floor=0.1, peak_hour=13.0)
        assert np.isclose(curve(np.array([1.0]))[0], 0.1)

    def test_validation(self):
        with pytest.raises(ConfigError):
            ActivityCurve(night_floor=0.0)

    def test_period_average_ordering(self):
        curve = ActivityCurve(night_floor=0.05, peak_hour=13.0)
        morning = curve.period_average(DayPeriod.MORNING)
        late_night = curve.period_average(DayPeriod.LATE_NIGHT)
        assert morning > 2 * late_night


class TestActivityModel:
    def test_class_specific_curves(self):
        model = ActivityModel(curves={
            "business": ActivityCurve(night_floor=0.05),
            "consumer": ActivityCurve(night_floor=0.3),
        })
        t = np.array([2 * 3600.0])  # 2am
        assert model.factor(t, "business")[0] < model.factor(t, "consumer")[0]

    def test_default_curve_for_unknown_class(self):
        model = ActivityModel()
        assert model.factor(np.array([0.0]), "mystery").size == 1

    def test_weekend_factor(self):
        model = ActivityModel(weekend_factor={"business": 0.5})
        weekday = model.factor(np.array([12 * 3600.0]), "business")  # day 0
        weekend = model.factor(np.array([5 * 86400.0 + 12 * 3600.0]), "business")
        assert np.isclose(weekend[0], 0.5 * weekday[0])

    def test_max_factor_includes_weekend_boost(self):
        model = ActivityModel(weekend_factor={"consumer": 1.5})
        assert model.max_factor("consumer") == 1.5
        assert model.max_factor("business") == 1.0

    def test_tz_shift(self):
        model = ActivityModel(curves={"c": ActivityCurve(night_floor=0.05,
                                                         peak_hour=12.0)})
        t = np.array([0.0])
        at_utc = model.factor(t, "c", tz_offset_hours=0.0)[0]
        at_noon_local = model.factor(t, "c", tz_offset_hours=12.0)[0]
        assert at_noon_local > at_utc


class TestPopulation:
    def test_sizes_and_ids(self):
        population = synthesize_population(PopulationConfig(n_users=50), rng=1)
        assert population.n_users == 50
        assert len(set(population.user_ids)) == 50
        assert all(is_guid_shaped(uid) for uid in population.user_ids)

    def test_class_fraction(self):
        population = synthesize_population(
            PopulationConfig(n_users=4000, business_fraction=0.7), rng=2
        )
        share = (population.classes == 0).mean()
        assert 0.65 < share < 0.75

    def test_conditioning_disabled_by_default(self):
        population = synthesize_population(PopulationConfig(n_users=100), rng=3)
        assert np.allclose(population.conditioning_exponents, 1.0)

    def test_conditioning_anticorrelates_with_speed(self):
        population = synthesize_population(
            PopulationConfig(n_users=2000, conditioning_gamma=2.0,
                             latency_mult_sigma=0.3), rng=4
        )
        fast = population.latency_multipliers < np.median(population.latency_multipliers)
        assert (population.conditioning_exponents[fast].mean()
                > population.conditioning_exponents[~fast].mean())

    def test_conditioning_bounds_respected(self):
        config = PopulationConfig(n_users=1000, conditioning_gamma=5.0,
                                  latency_mult_sigma=0.5,
                                  conditioning_bounds=(0.5, 1.5))
        population = synthesize_population(config, rng=5)
        assert population.conditioning_exponents.min() >= 0.5
        assert population.conditioning_exponents.max() <= 1.5

    def test_sampling_probabilities_normalized(self):
        population = synthesize_population(PopulationConfig(n_users=64), rng=6)
        assert np.isclose(population.sampling_probabilities().sum(), 1.0)

    def test_indices_of_class(self):
        population = synthesize_population(PopulationConfig(n_users=100), rng=7)
        business = population.indices_of_class(UserClass.BUSINESS)
        consumer = population.indices_of_class(UserClass.CONSUMER)
        assert business.size + consumer.size == 100

    def test_validation(self):
        with pytest.raises(ConfigError):
            PopulationConfig(n_users=0)
        with pytest.raises(ConfigError):
            PopulationConfig(business_fraction=1.5)
        with pytest.raises(ConfigError):
            PopulationConfig(conditioning_bounds=(2.0, 1.0))


class TestActionMix:
    def test_probabilities_normalized(self):
        mix = owa_action_mix()
        assert np.isclose(mix.probabilities.sum(), 1.0)

    def test_sample_respects_shares(self):
        mix = ActionMix((ActionSpec("a", 0.9), ActionSpec("b", 0.1)))
        draws = mix.sample(10_000, rng=1)
        assert 0.87 < (draws == 0).mean() < 0.93

    def test_from_mapping(self):
        mix = ActionMix.from_mapping({"x": 1.0, "y": 3.0},
                                     multipliers={"y": 2.0})
        assert mix.names == ("x", "y")
        assert np.isclose(mix.probabilities[1], 0.75)
        assert mix.latency_multipliers[1] == 2.0

    def test_owa_mix_has_paper_actions(self):
        assert set(owa_action_mix().names) == {
            "SelectMail", "SwitchFolder", "Search", "ComposeSend"
        }

    def test_search_slower_compose_faster(self):
        mix = owa_action_mix()
        mult = dict(zip(mix.names, mix.latency_multipliers))
        assert mult["Search"] > mult["SelectMail"] > mult["ComposeSend"]

    def test_websearch_mix(self):
        assert "Query" in websearch_action_mix().names

    def test_validation(self):
        with pytest.raises(ConfigError):
            ActionMix(())
        with pytest.raises(ConfigError):
            ActionSpec("", 1.0)
        with pytest.raises(ConfigError):
            ActionSpec("a", -1.0)
        with pytest.raises(ConfigError):
            ActionSpec("a", 1.0, latency_multiplier=0.0)
