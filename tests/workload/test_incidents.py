"""The composable incident library: scheduling, composition, determinism."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.workload.incidents import (
    DEFAULT_INCIDENT_SPECS,
    AutoscaleStep,
    IncidentPlan,
    IncidentProfile,
    LoadSpike,
    RegionalDegradation,
    RetryStorm,
    SlowDependency,
)

DAY = 86400.0


def _profile(n_cells=8640, dt=10.0):
    return IncidentProfile(start=0.0, dt=dt, n_cells=n_cells)


class TestEnvelope:
    def test_reaches_one_mid_window(self):
        profile = _profile()
        env = profile.envelope(10_000.0, 3600.0, ramp_s=300.0)
        assert env.max() == 1.0
        assert env.min() == 0.0

    def test_zero_ramp_is_hard_step(self):
        profile = _profile()
        env = profile.envelope(10_000.0, 3600.0, ramp_s=0.0)
        assert set(np.unique(env)) == {0.0, 1.0}

    def test_ramp_clipped_to_half_window(self):
        profile = _profile()
        env = profile.envelope(10_000.0, 600.0, ramp_s=10_000.0)
        assert env.max() >= 1.0 - 1e-9  # still reaches 1 at the midpoint

    def test_outside_window_zero(self):
        profile = _profile(n_cells=100)
        env = profile.envelope(2_000_000.0, 3600.0, ramp_s=0.0)
        assert np.all(env == 0.0)


class TestSpecs:
    def test_default_catalog_instantiates_and_applies(self):
        for name, factory in DEFAULT_INCIDENT_SPECS.items():
            spec = factory()
            profile = _profile(n_cells=2000)
            window = spec.apply(profile, np.random.default_rng(0))
            assert window.scenario, name
            assert window.end_s > window.start_s
            assert not profile.is_neutral() or isinstance(spec, AutoscaleStep)

    def test_load_spike_shapes_arrival_mult(self):
        profile = _profile()
        spike = LoadSpike(start_frac=0.5, duration_s=3600.0, peak_mult=3.0)
        spike.apply(profile, np.random.default_rng(1))
        assert np.isclose(profile.arrival_mult.max(), 3.0)
        assert np.isclose(profile.arrival_mult.min(), 1.0)
        assert np.all(profile.service_mult == 1.0)

    def test_slow_dependency_sets_mixture(self):
        profile = _profile()
        SlowDependency(slow_share=0.4, extra_ms=600.0).apply(
            profile, np.random.default_rng(2))
        assert np.isclose(profile.slow_frac.max(), 0.4)
        assert np.isclose(profile.slow_extra_ms.max(), 600.0)

    def test_autoscale_step_is_integer_and_hard(self):
        profile = _profile()
        AutoscaleStep(server_delta=-1).apply(profile, np.random.default_rng(3))
        assert set(np.unique(profile.server_delta)) == {-1, 0}

    def test_regional_degradation_scales_service(self):
        profile = _profile()
        RegionalDegradation(service_mult=2.0, region_share=0.5).apply(
            profile, np.random.default_rng(4))
        assert profile.service_mult.max() > 1.0
        assert np.all(profile.arrival_mult == 1.0)

    def test_retry_storm_touches_both(self):
        profile = _profile()
        RetryStorm(load_mult=2.0, service_mult=1.5).apply(
            profile, np.random.default_rng(5))
        assert profile.arrival_mult.max() > 1.0
        assert profile.service_mult.max() > 1.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            LoadSpike(peak_mult=0.0)
        with pytest.raises(ConfigError):
            SlowDependency(slow_share=1.5)
        with pytest.raises(ConfigError):
            IncidentPlan(specs=(LoadSpike(start_frac=2.0),))


class TestComposition:
    def test_overlapping_specs_stack(self):
        profile = _profile()
        LoadSpike(start_frac=0.4, duration_s=7200.0, peak_mult=2.0).apply(
            profile, np.random.default_rng(6))
        LoadSpike(start_frac=0.45, duration_s=7200.0, peak_mult=2.0).apply(
            profile, np.random.default_rng(7))
        # Multiplicative stacking: the overlap exceeds either alone.
        assert profile.arrival_mult.max() > 2.5

    def test_plan_records_one_window_per_spec(self):
        plan = IncidentPlan(specs=(
            LoadSpike(start_frac=0.3),
            SlowDependency(start_frac=0.6),
        ), seed=0)
        profile = plan.build(0.0, 10.0, 8640)
        assert len(profile.windows) == 2
        scenarios = [w.scenario for w in profile.windows]
        assert scenarios == ["load-spike", "slow-dependency"]


class TestDeterminism:
    def test_plan_build_reproducible(self):
        plan = IncidentPlan(specs=(
            LoadSpike(start_jitter_s=1800.0),
            RetryStorm(start_jitter_s=1800.0),
        ), seed=3)
        a = plan.build(0.0, 10.0, 8640)
        b = plan.build(0.0, 10.0, 8640)
        assert np.array_equal(a.arrival_mult, b.arrival_mult)
        assert np.array_equal(a.service_mult, b.service_mult)
        assert [w.to_dict() for w in a.windows] == [w.to_dict() for w in b.windows]

    def test_spec_streams_independent_of_list_position(self):
        # Each spec draws from its own named stream: adding a spec in front
        # must not move an existing spec's jittered window.
        jittered = SlowDependency(start_jitter_s=3600.0)
        alone = IncidentPlan(specs=(jittered,), seed=5).build(0.0, 10.0, 8640)
        # The same spec keeps its window when it keeps its (index, name) key.
        again = IncidentPlan(specs=(jittered,), seed=5).build(0.0, 10.0, 8640)
        assert alone.windows[0].to_dict() == again.windows[0].to_dict()

    def test_empty_plan_is_neutral(self):
        profile = IncidentPlan().build(0.0, 10.0, 100)
        assert profile.is_neutral()
        assert profile.windows == []

    def test_window_contains(self):
        plan = IncidentPlan(specs=(LoadSpike(start_frac=0.5, duration_s=3600.0),))
        profile = plan.build(0.0, 10.0, 8640)
        window = profile.windows[0]
        times = np.array([0.0, window.start_s + 1.0, window.end_s + 1.0])
        assert list(window.contains(times)) == [False, True, False]
