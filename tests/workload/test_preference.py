"""Tests for ground-truth preference curves."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.types import ActionType, DayPeriod, UserClass
from repro.workload.preference import (
    PAPER_ANCHORS,
    PERIOD_EXPONENTS,
    REFERENCE_LATENCY_MS,
    GroundTruth,
    PreferenceCurve,
    paper_curve,
)


class TestPreferenceCurve:
    def test_hits_anchors(self):
        curve = paper_curve(ActionType.SELECT_MAIL)
        anchors = PAPER_ANCHORS[ActionType.SELECT_MAIL.value]
        for latency, value in anchors.items():
            assert np.isclose(float(curve(np.array([latency]))[0]), value)

    def test_normalized_at_reference(self):
        curve = paper_curve(ActionType.SEARCH)
        out = curve.normalized(np.array([REFERENCE_LATENCY_MS]))
        assert np.isclose(out[0], 1.0)

    def test_paper_headline_values(self):
        """SelectMail: 0.88 / 0.68 / 0.61 at 500/1000/1500 ms (Section 3.2)."""
        curve = paper_curve(ActionType.SELECT_MAIL, UserClass.BUSINESS)
        values = curve.normalized(np.array([500.0, 1000.0, 1500.0]))
        assert np.allclose(values, [0.88, 0.68, 0.61], atol=1e-9)

    def test_monotone_decreasing_above_reference(self):
        for action in ActionType:
            curve = paper_curve(action)
            queries = np.linspace(300.0, 3000.0, 200)
            values = curve(queries)
            assert np.all(np.diff(values) <= 1e-9), action

    def test_flat_tails(self):
        curve = paper_curve(ActionType.SELECT_MAIL)
        assert float(curve(np.array([10.0]))[0]) == float(curve(np.array([50.0]))[0])
        assert float(curve(np.array([5000.0]))[0]) == float(curve(np.array([3000.0]))[0])

    def test_exponent_preserves_reference(self):
        curve = paper_curve(ActionType.SELECT_MAIL)
        out = curve.normalized(np.array([REFERENCE_LATENCY_MS]), exponent=1.7)
        assert np.isclose(out[0], 1.0)

    def test_exponent_steepens(self):
        curve = paper_curve(ActionType.SELECT_MAIL)
        base = curve.normalized(np.array([1000.0]))[0]
        steep = curve.normalized(np.array([1000.0]), exponent=1.5)[0]
        assert steep < base

    def test_rejects_single_anchor(self):
        with pytest.raises(ConfigError):
            PreferenceCurve.from_mapping({300.0: 1.0})

    def test_rejects_nonpositive_values(self):
        with pytest.raises(ConfigError):
            PreferenceCurve.from_mapping({300.0: 1.0, 500.0: 0.0})

    def test_consumer_shallower_than_business(self):
        business = paper_curve(ActionType.SELECT_MAIL, UserClass.BUSINESS)
        consumer = paper_curve(ActionType.SELECT_MAIL, UserClass.CONSUMER)
        for latency in (500.0, 1000.0, 2000.0):
            assert (consumer.normalized(np.array([latency]))[0]
                    > business.normalized(np.array([latency]))[0])

    def test_consumer_fallback_softens(self):
        business = paper_curve(ActionType.SEARCH, UserClass.BUSINESS)
        consumer = paper_curve(ActionType.SEARCH, UserClass.CONSUMER)
        assert (consumer.normalized(np.array([1500.0]))[0]
                >= business.normalized(np.array([1500.0]))[0])

    def test_unknown_action_rejected(self):
        with pytest.raises(ConfigError):
            paper_curve("NotAnAction")

    def test_max_value(self):
        curve = paper_curve(ActionType.SELECT_MAIL)
        assert curve.max_value >= 1.13


class TestGroundTruth:
    def test_paper_default_covers_all_pairs(self):
        truth = GroundTruth.paper_default()
        for action in ActionType:
            for user_class in UserClass:
                assert truth.curve_for(action.value, user_class.value) is not None

    def test_missing_pair_raises(self):
        truth = GroundTruth({("a", "b"): paper_curve(ActionType.SEARCH)})
        with pytest.raises(ConfigError):
            truth.curve_for("x", "y")

    def test_class_agnostic_fallback(self):
        truth = GroundTruth({("a", ""): paper_curve(ActionType.SEARCH)})
        assert truth.curve_for("a", "whatever") is truth.curves[("a", "")]

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            GroundTruth({})

    def test_period_exponent_default_ones(self):
        truth = GroundTruth.paper_default(time_of_day_effect=False)
        exps = truth.period_exponent(np.array([3.0, 12.0, 22.0]))
        assert np.allclose(exps, 1.0)

    def test_period_exponent_enabled(self):
        truth = GroundTruth.paper_default(time_of_day_effect=True)
        exps = truth.period_exponent(np.array([10.0, 4.0]))
        assert exps[0] == PERIOD_EXPONENTS[DayPeriod.MORNING]
        assert exps[1] == PERIOD_EXPONENTS[DayPeriod.LATE_NIGHT]

    def test_preference_combines_exponents(self):
        truth = GroundTruth.paper_default(time_of_day_effect=True)
        latencies = np.array([1000.0])
        base = truth.preference(latencies, "SelectMail", "business",
                                hours=None, user_exponent=1.0)
        night = truth.preference(latencies, "SelectMail", "business",
                                 hours=np.array([4.0]), user_exponent=1.0)
        assert night[0] > base[0]  # late-night exponent < 1 lifts preference

    def test_expected_nlp_period(self):
        truth = GroundTruth.paper_default(time_of_day_effect=True)
        flat = truth.expected_nlp(np.array([1000.0]), "SelectMail", "business")
        morning = truth.expected_nlp(np.array([1000.0]), "SelectMail", "business",
                                     period=DayPeriod.MORNING)
        assert morning[0] < flat[0]


@given(
    latency=st.floats(min_value=50.0, max_value=3000.0),
    exponent=st.floats(min_value=0.4, max_value=2.0),
)
@settings(max_examples=60, deadline=None)
def test_exponent_order_preserving(latency, exponent):
    """Property: power transforms preserve which side of 1.0 a value is on."""
    curve = paper_curve(ActionType.SELECT_MAIL)
    base = float(curve(np.array([latency]))[0])
    transformed = float(curve(np.array([latency]), exponent=exponent)[0])
    assert (base > 1.0) == (transformed > 1.0) or np.isclose(base, 1.0, atol=1e-6)
