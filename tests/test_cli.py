"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli.main import main


class TestList:
    def test_lists_everything(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "owa" in out
        assert "fig4" in out
        assert "websearch" in out


class TestGenerate:
    def test_jsonl_output(self, tmp_path, capsys):
        out_path = tmp_path / "logs.jsonl"
        status = main(["generate", "--scenario", "owa", "--seed", "3",
                       "--days", "0.5", "--users", "40",
                       "--out", str(out_path)])
        assert status == 0
        assert out_path.exists()
        assert "wrote" in capsys.readouterr().out

    def test_csv_output(self, tmp_path):
        out_path = tmp_path / "logs.csv"
        assert main(["generate", "--scenario", "owa-flat", "--seed", "3",
                     "--days", "0.5", "--users", "40",
                     "--out", str(out_path)]) == 0
        header = out_path.read_text().splitlines()[0]
        assert header.startswith("time,action,latency_ms")

    def test_unknown_scenario(self, tmp_path, capsys):
        assert main(["generate", "--scenario", "nope",
                     "--out", str(tmp_path / "x.jsonl")]) == 2
        assert "unknown scenario" in capsys.readouterr().err


class TestAnalyze:
    @pytest.fixture()
    def log_file(self, tmp_path):
        path = tmp_path / "logs.jsonl"
        main(["generate", "--scenario", "owa", "--seed", "5",
              "--days", "2", "--users", "150", "--out", str(path)])
        return path

    def test_analyze_prints_table(self, log_file, capsys):
        assert main(["analyze", str(log_file), "--action", "SelectMail"]) == 0
        out = capsys.readouterr().out
        assert "NLP" in out
        assert "action=SelectMail" in out

    def test_analyze_exports(self, log_file, tmp_path, capsys):
        export = tmp_path / "curve.csv"
        assert main(["analyze", str(log_file), "--action", "SelectMail",
                     "--export", str(export)]) == 0
        assert export.exists()
        assert export.read_text().startswith("latency_ms")

    def test_no_time_correction_flag(self, log_file):
        assert main(["analyze", str(log_file), "--action", "SelectMail",
                     "--no-time-correction"]) == 0


class TestExperiment:
    def test_table1(self, capsys):
        assert main(["experiment", "table1", "--no-plots"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0


class TestExportCounts:
    @pytest.fixture()
    def log_file(self, tmp_path):
        path = tmp_path / "logs.jsonl"
        main(["generate", "--scenario", "owa", "--seed", "5",
              "--days", "2", "--users", "150", "--out", str(path)])
        return path

    def test_export_and_analyze_counts(self, log_file, tmp_path, capsys):
        counts_path = tmp_path / "counts.json"
        assert main(["export-counts", str(log_file),
                     "--action", "SelectMail", "--out", str(counts_path)]) == 0
        assert counts_path.exists()
        out = capsys.readouterr().out
        assert "sufficient statistics" in out
        assert main(["analyze", str(counts_path)]) == 0
        out = capsys.readouterr().out
        assert "NLP" in out

    def test_counts_file_has_no_user_ids(self, log_file, tmp_path):
        counts_path = tmp_path / "counts.json"
        main(["export-counts", str(log_file), "--out", str(counts_path)])
        text = counts_path.read_text()
        # GUID-shaped tokens must not appear
        import re
        assert not re.search(r"[0-9a-f]{8}-[0-9a-f]{4}-", text)

    def test_empty_slice(self, log_file, tmp_path, capsys):
        status = main(["export-counts", str(log_file),
                       "--action", "NoSuchAction",
                       "--out", str(tmp_path / "x.json")])
        assert status == 2
        assert "empty" in capsys.readouterr().err

    def test_hour_of_week_scheme(self, log_file, tmp_path):
        counts_path = tmp_path / "counts.json"
        assert main(["export-counts", str(log_file),
                     "--scheme", "hour-of-week",
                     "--out", str(counts_path)]) == 0
        from repro.core.aggregate import load_counts
        assert load_counts(counts_path).scheme == "hour-of-week"
