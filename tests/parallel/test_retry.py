"""Retry policy semantics: backoff, taxonomy, exhaustion."""

import pytest

from repro.errors import (
    ConfigError,
    InsufficientDataError,
    ReproError,
    TaskFailedError,
)
from repro.parallel import RetryPolicy, call_with_retry, is_retryable


class TestRetryPolicy:
    def test_delays_are_capped_exponential(self):
        policy = RetryPolicy(max_attempts=5, backoff_base_s=1.0,
                             backoff_factor=2.0, max_backoff_s=3.0)
        assert list(policy.delays()) == [1.0, 2.0, 3.0, 3.0]

    def test_single_attempt_has_no_delays(self):
        assert list(RetryPolicy(max_attempts=1).delays()) == []

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"backoff_base_s": -1.0},
        {"backoff_factor": 0.5},
        {"timeout_s": 0.0},
    ])
    def test_rejects_bad_config(self, kwargs):
        with pytest.raises(ConfigError):
            RetryPolicy(**kwargs)


class TestIsRetryable:
    def test_infrastructure_errors_are_retryable(self):
        from concurrent.futures.process import BrokenProcessPool

        assert is_retryable(OSError("io"))
        assert is_retryable(TimeoutError("slow"))
        assert is_retryable(BrokenProcessPool("dead worker"))

    def test_data_errors_are_not(self):
        assert not is_retryable(InsufficientDataError("sparse"))
        assert not is_retryable(ReproError("nope"))
        assert not is_retryable(ValueError("bug"))
        assert not is_retryable(KeyboardInterrupt())


class TestCallWithRetry:
    def test_success_needs_no_retry(self):
        sleeps = []
        assert call_with_retry(lambda x: x + 1, 41, sleep=sleeps.append) == 42
        assert sleeps == []

    def test_transient_failure_recovers(self):
        attempts = []

        def flaky(x):
            attempts.append(x)
            if len(attempts) < 3:
                raise OSError("transient")
            return x * 2

        sleeps = []
        policy = RetryPolicy(max_attempts=3, backoff_base_s=0.5,
                             backoff_factor=2.0)
        assert call_with_retry(flaky, 5, policy=policy, sleep=sleeps.append) == 10
        assert attempts == [5, 5, 5]
        assert sleeps == [0.5, 1.0]

    def test_data_error_propagates_immediately(self):
        attempts = []

        def broken(_):
            attempts.append(1)
            raise InsufficientDataError("sparse slice")

        with pytest.raises(InsufficientDataError):
            call_with_retry(broken, 0, sleep=lambda _: None)
        assert len(attempts) == 1

    def test_exhaustion_raises_task_failed(self):
        def always_down(_):
            raise OSError("still down")

        policy = RetryPolicy(max_attempts=3)
        with pytest.raises(TaskFailedError) as excinfo:
            call_with_retry(always_down, 0, policy=policy,
                            task_name="sweep[2]", sleep=lambda _: None)
        err = excinfo.value
        assert err.task_name == "sweep[2]"
        assert err.attempts == 3
        assert isinstance(err.last_cause, OSError)
        assert isinstance(err.__cause__, OSError)


class TestDecorrelatedJitter:
    def test_off_by_default(self):
        assert RetryPolicy().jitter == "none"

    def test_rejects_unknown_mode(self):
        with pytest.raises(ConfigError):
            RetryPolicy(jitter="full")

    def test_same_seed_same_delays(self):
        # Seed-derived jitter is a pure function of jitter_seed: chaos
        # tests replaying a policy see the exact same backoff schedule.
        kwargs = dict(max_attempts=6, backoff_base_s=0.05,
                      max_backoff_s=5.0, jitter="decorrelated")
        a = list(RetryPolicy(jitter_seed=7, **kwargs).delays())
        b = list(RetryPolicy(jitter_seed=7, **kwargs).delays())
        assert a == b
        # ... and of nothing else: a fresh iterator replays identically.
        policy = RetryPolicy(jitter_seed=7, **kwargs)
        assert list(policy.delays()) == list(policy.delays()) == a

    def test_different_seeds_decorrelate(self):
        kwargs = dict(max_attempts=8, backoff_base_s=0.05,
                      max_backoff_s=60.0, jitter="decorrelated")
        a = list(RetryPolicy(jitter_seed=1, **kwargs).delays())
        b = list(RetryPolicy(jitter_seed=2, **kwargs).delays())
        assert a != b

    def test_delays_respect_bounds(self):
        policy = RetryPolicy(max_attempts=10, backoff_base_s=0.1,
                             max_backoff_s=2.0, jitter="decorrelated",
                             jitter_seed=3)
        delays = list(policy.delays())
        assert len(delays) == 9
        assert all(0.1 <= d <= 2.0 for d in delays)

    def test_jittered_policy_still_retries(self):
        attempts = []

        def flaky(x):
            attempts.append(x)
            if len(attempts) < 3:
                raise OSError("transient")
            return x

        sleeps = []
        policy = RetryPolicy(max_attempts=4, backoff_base_s=0.01,
                             jitter="decorrelated", jitter_seed=11)
        assert call_with_retry(flaky, 9, policy=policy,
                               sleep=sleeps.append) == 9
        assert sleeps == list(policy.delays())[:2]
