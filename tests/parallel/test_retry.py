"""Retry policy semantics: backoff, taxonomy, exhaustion."""

import pytest

from repro.errors import (
    ConfigError,
    InsufficientDataError,
    ReproError,
    TaskFailedError,
)
from repro.parallel import RetryPolicy, call_with_retry, is_retryable


class TestRetryPolicy:
    def test_delays_are_capped_exponential(self):
        policy = RetryPolicy(max_attempts=5, backoff_base_s=1.0,
                             backoff_factor=2.0, max_backoff_s=3.0)
        assert list(policy.delays()) == [1.0, 2.0, 3.0, 3.0]

    def test_single_attempt_has_no_delays(self):
        assert list(RetryPolicy(max_attempts=1).delays()) == []

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"backoff_base_s": -1.0},
        {"backoff_factor": 0.5},
        {"timeout_s": 0.0},
    ])
    def test_rejects_bad_config(self, kwargs):
        with pytest.raises(ConfigError):
            RetryPolicy(**kwargs)


class TestIsRetryable:
    def test_infrastructure_errors_are_retryable(self):
        from concurrent.futures.process import BrokenProcessPool

        assert is_retryable(OSError("io"))
        assert is_retryable(TimeoutError("slow"))
        assert is_retryable(BrokenProcessPool("dead worker"))

    def test_data_errors_are_not(self):
        assert not is_retryable(InsufficientDataError("sparse"))
        assert not is_retryable(ReproError("nope"))
        assert not is_retryable(ValueError("bug"))
        assert not is_retryable(KeyboardInterrupt())


class TestCallWithRetry:
    def test_success_needs_no_retry(self):
        sleeps = []
        assert call_with_retry(lambda x: x + 1, 41, sleep=sleeps.append) == 42
        assert sleeps == []

    def test_transient_failure_recovers(self):
        attempts = []

        def flaky(x):
            attempts.append(x)
            if len(attempts) < 3:
                raise OSError("transient")
            return x * 2

        sleeps = []
        policy = RetryPolicy(max_attempts=3, backoff_base_s=0.5,
                             backoff_factor=2.0)
        assert call_with_retry(flaky, 5, policy=policy, sleep=sleeps.append) == 10
        assert attempts == [5, 5, 5]
        assert sleeps == [0.5, 1.0]

    def test_data_error_propagates_immediately(self):
        attempts = []

        def broken(_):
            attempts.append(1)
            raise InsufficientDataError("sparse slice")

        with pytest.raises(InsufficientDataError):
            call_with_retry(broken, 0, sleep=lambda _: None)
        assert len(attempts) == 1

    def test_exhaustion_raises_task_failed(self):
        def always_down(_):
            raise OSError("still down")

        policy = RetryPolicy(max_attempts=3)
        with pytest.raises(TaskFailedError) as excinfo:
            call_with_retry(always_down, 0, policy=policy,
                            task_name="sweep[2]", sleep=lambda _: None)
        err = excinfo.value
        assert err.task_name == "sweep[2]"
        assert err.attempts == 3
        assert isinstance(err.last_cause, OSError)
        assert isinstance(err.__cause__, OSError)
