"""The executor protocol: ordering, chunking, spec resolution, seeding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.parallel import (
    EXECUTOR_BACKENDS,
    ProcessExecutor,
    SerialExecutor,
    resolve_executor,
    task_seeds,
    task_streams,
)


def _square(x):
    """Module-level so the process backend can pickle it."""
    return x * x


def _tag(x):
    return (x, x % 3)


class TestSerialExecutor:
    def test_preserves_input_order(self):
        assert SerialExecutor().map_ordered(_square, [3, 1, 2]) == [9, 1, 4]

    def test_empty_items(self):
        assert SerialExecutor().map_ordered(_square, []) == []

    def test_exceptions_propagate(self):
        def boom(x):
            raise ValueError("task failed")

        with pytest.raises(ValueError, match="task failed"):
            SerialExecutor().map_ordered(boom, [1])


class TestProcessExecutor:
    def test_matches_serial_in_order(self):
        items = list(range(23))
        expected = SerialExecutor().map_ordered(_square, items)
        assert ProcessExecutor(max_workers=2).map_ordered(_square, items) == expected

    def test_explicit_chunk_size(self):
        items = list(range(10))
        result = ProcessExecutor(max_workers=2, chunk_size=3).map_ordered(_tag, items)
        assert result == [_tag(i) for i in items]

    def test_single_item_runs_inline(self):
        assert ProcessExecutor(max_workers=4).map_ordered(_square, [5]) == [25]

    def test_empty_items(self):
        assert ProcessExecutor(max_workers=2).map_ordered(_square, []) == []

    def test_default_chunking_covers_all_items(self):
        executor = ProcessExecutor(max_workers=2)
        chunks = executor._chunks(list(range(17)), None)
        assert sum(len(c) for c in chunks) == 17
        assert all(len(c) >= 1 for c in chunks)
        flattened = [x for chunk in chunks for x in chunk]
        assert flattened == list(range(17))

    def test_invalid_workers_rejected(self):
        with pytest.raises(ConfigError):
            ProcessExecutor(max_workers=0)

    def test_invalid_chunk_size_rejected(self):
        with pytest.raises(ConfigError):
            ProcessExecutor(chunk_size=0)


class TestResolveExecutor:
    def test_none_and_serial_names(self):
        assert isinstance(resolve_executor(None), SerialExecutor)
        assert isinstance(resolve_executor("serial"), SerialExecutor)

    def test_process_name_and_worker_count(self):
        assert isinstance(resolve_executor("process"), ProcessExecutor)
        ex = resolve_executor(3)
        assert isinstance(ex, ProcessExecutor)
        assert ex.max_workers == 3

    def test_executor_objects_pass_through(self):
        ex = SerialExecutor()
        assert resolve_executor(ex) is ex

    def test_unknown_backend_name(self):
        with pytest.raises(ConfigError, match="unknown executor backend"):
            resolve_executor("threads")

    def test_uninterpretable_spec(self):
        with pytest.raises(ConfigError):
            resolve_executor(3.5)

    def test_backends_registry(self):
        for name in EXECUTOR_BACKENDS:
            resolve_executor(name)  # every advertised name must resolve


class TestTaskSeeding:
    def test_seeds_are_pure_in_root_and_name(self):
        assert task_seeds(42, "sweep", 5) == task_seeds(42, "sweep", 5)

    def test_seeds_differ_across_indices_and_names(self):
        seeds = task_seeds(42, "sweep", 8)
        assert len(set(seeds)) == len(seeds)
        assert task_seeds(42, "other", 8) != seeds

    def test_seeds_differ_across_roots(self):
        assert task_seeds(1, "sweep", 4) != task_seeds(2, "sweep", 4)

    def test_prefix_stability(self):
        """Growing the fan-out must not reseed the existing tasks."""
        assert task_seeds(7, "chunk", 3) == task_seeds(7, "chunk", 5)[:3]

    def test_streams_match_seedless_rebuild(self):
        streams = task_streams(11, "bootstrap", 3)
        again = task_streams(11, "bootstrap", 3)
        for a, b in zip(streams, again):
            assert np.array_equal(a.integers(0, 1000, 10), b.integers(0, 1000, 10))
