"""Checkpoint journal: round-trips, atomicity, torn-file tolerance."""

import pickle

import numpy as np

from repro.parallel import CheckpointJournal


class TestCheckpointJournal:
    def test_round_trip(self, tmp_path):
        journal = CheckpointJournal(tmp_path)
        key = journal.key_for("fn", (1, 2, 3))
        assert key not in journal
        journal.put(key, {"x": np.arange(4)})
        assert key in journal
        value = journal.get(key)
        np.testing.assert_array_equal(value["x"], np.arange(4))

    def test_fetch_distinguishes_none_from_miss(self, tmp_path):
        journal = CheckpointJournal(tmp_path)
        key = journal.key_for("task", 0)
        assert journal.fetch(key) == (False, None)
        journal.put(key, None)
        assert journal.fetch(key) == (True, None)

    def test_keys_are_stable_across_instances(self, tmp_path):
        a = CheckpointJournal(tmp_path, namespace="fig4/seed=0")
        b = CheckpointJournal(tmp_path, namespace="fig4/seed=0")
        assert a.key_for("task", (1, "x")) == b.key_for("task", (1, "x"))

    def test_namespaces_do_not_collide(self, tmp_path):
        a = CheckpointJournal(tmp_path, namespace="seed=0")
        b = CheckpointJournal(tmp_path, namespace="seed=1")
        assert a.key_for("task", 7) != b.key_for("task", 7)

    def test_torn_file_reads_as_missing(self, tmp_path):
        journal = CheckpointJournal(tmp_path)
        key = journal.key_for("task", 1)
        journal.put(key, [1, 2, 3])
        # Simulate a crash mid-write that somehow bypassed the atomic
        # rename (e.g. a previous implementation): truncate the file.
        path = tmp_path / f"{key}.pkl"
        path.write_bytes(pickle.dumps([1, 2, 3])[:5])
        assert journal.get(key, "fallback") == "fallback"
        assert journal.fetch(key) == (False, None)

    def test_clear_removes_everything(self, tmp_path):
        journal = CheckpointJournal(tmp_path)
        for i in range(3):
            journal.put(journal.key_for("task", i), i)
        assert len(journal) == 3
        assert journal.clear() == 3
        assert len(journal) == 0
        assert journal.keys() == []

    def test_journal_is_picklable(self, tmp_path):
        # The journaling shim ships the journal into process workers.
        journal = CheckpointJournal(tmp_path, namespace="ns")
        clone = pickle.loads(pickle.dumps(journal))
        key = clone.key_for("task", 5)
        clone.put(key, "from-clone")
        assert journal.get(key) == "from-clone"
