"""Fault-tolerant executor semantics: crash recovery, checkpoint resume.

The process-backend crash tests use tasks that misbehave only inside a
worker process (detected via ``multiprocessing.parent_process()``), so the
serial recovery path — which runs in the main process — computes the real
value. That is exactly the recovery contract: pure tasks give bit-identical
results no matter which process finally ran them.
"""

import multiprocessing
import os
import time

import pytest

from repro.errors import InsufficientDataError, TaskFailedError
from repro.parallel import (
    CheckpointJournal,
    ProcessExecutor,
    ResilientExecutor,
    RetryPolicy,
    SerialExecutor,
)


def _in_worker() -> bool:
    return multiprocessing.parent_process() is not None


def _square(x):
    return x * x


def _square_crash_in_worker(x):
    if _in_worker():
        os._exit(17)  # hard death: no exception, no cleanup
    return x * x


def _square_slow_in_worker(x):
    if _in_worker():
        time.sleep(30.0)
    return x * x


class TestProcessExecutorCrashRecovery:
    def test_worker_crash_recovers_bit_identical(self):
        items = list(range(12))
        expected = SerialExecutor().map_ordered(_square, items)
        executor = ProcessExecutor(max_workers=2, chunk_size=3)
        assert executor.map_ordered(_square_crash_in_worker, items) == expected

    def test_timeout_recovers_serially(self):
        items = list(range(4))
        executor = ProcessExecutor(
            max_workers=2, chunk_size=2,
            retry=RetryPolicy(timeout_s=1.0),
        )
        start = time.monotonic()
        assert executor.map_ordered(_square_slow_in_worker, items) == \
            SerialExecutor().map_ordered(_square, items)
        # The hung workers must not be waited for on shutdown.
        assert time.monotonic() - start < 25.0

    def test_data_errors_propagate_unchanged(self):
        def sparse(_):
            raise InsufficientDataError("too sparse")

        with pytest.raises(InsufficientDataError):
            ProcessExecutor(max_workers=1).map_ordered(sparse, [1])


class TestResilientExecutor:
    def test_plain_map_matches_serial(self):
        executor = ResilientExecutor()
        assert executor.map_ordered(_square, range(5)) == [0, 1, 4, 9, 16]
        assert executor.map_ordered(_square, []) == []

    def test_inner_crash_falls_back_to_serial(self):
        class BrokenInner:
            def map_ordered(self, fn, items, chunk_size=None):
                raise OSError("pool exploded")

        executor = ResilientExecutor(inner=BrokenInner(), sleep=lambda _: None)
        assert executor.map_ordered(_square, range(4)) == [0, 1, 4, 9]

    def test_non_retryable_inner_error_propagates(self):
        class DataErrorInner:
            def map_ordered(self, fn, items, chunk_size=None):
                raise InsufficientDataError("sparse")

        executor = ResilientExecutor(inner=DataErrorInner())
        with pytest.raises(InsufficientDataError):
            executor.map_ordered(_square, range(4))

    def test_retry_exhaustion_surfaces_task_failed(self):
        class AlwaysBroken:
            def map_ordered(self, fn, items, chunk_size=None):
                raise OSError("down")

        def flaky(_):
            raise OSError("still down")

        executor = ResilientExecutor(
            inner=AlwaysBroken(),
            retry=RetryPolicy(max_attempts=2),
            sleep=lambda _: None,
        )
        with pytest.raises(TaskFailedError) as excinfo:
            executor.map_ordered(flaky, [1, 2])
        assert excinfo.value.attempts == 2

    def test_checkpoint_skips_completed_tasks(self, tmp_path):
        journal = CheckpointJournal(tmp_path, namespace="test")
        calls = []

        def task(x):
            calls.append(x)
            return x * 3

        first = ResilientExecutor(checkpoint=journal)
        assert first.map_ordered(task, [1, 2, 3]) == [3, 6, 9]
        assert calls == [1, 2, 3]

        resumed = ResilientExecutor(checkpoint=journal)
        assert resumed.map_ordered(task, [1, 2, 3]) == [3, 6, 9]
        assert calls == [1, 2, 3]  # nothing recomputed

        assert resumed.map_ordered(task, [1, 2, 3, 4]) == [3, 6, 9, 12]
        assert calls == [1, 2, 3, 4]  # only the new item ran

    def test_interrupted_run_resumes_where_it_died(self, tmp_path):
        """A run killed mid-sweep leaves finished tasks journaled."""
        journal = CheckpointJournal(tmp_path, namespace="sweep")
        calls = []
        explode_at = [3]

        def task(x):
            if x == explode_at[0]:
                raise KeyboardInterrupt  # simulated ctrl-C / kill
            calls.append(x)
            return x + 100

        executor = ResilientExecutor(checkpoint=journal)
        with pytest.raises(KeyboardInterrupt):
            executor.map_ordered(task, [0, 1, 2, 3, 4])
        assert calls == [0, 1, 2]

        explode_at[0] = None  # the interruption does not recur
        resumed = ResilientExecutor(checkpoint=journal)
        assert resumed.map_ordered(task, [0, 1, 2, 3, 4]) == \
            [100, 101, 102, 103, 104]
        assert calls == [0, 1, 2, 3, 4]  # 0-2 served from the journal

    def test_checkpointed_process_backend_matches_serial(self, tmp_path):
        journal = CheckpointJournal(tmp_path, namespace="proc")
        items = list(range(10))
        expected = SerialExecutor().map_ordered(_square, items)
        executor = ResilientExecutor(
            inner=ProcessExecutor(max_workers=2, chunk_size=2),
            checkpoint=journal,
        )
        assert executor.map_ordered(_square, items) == expected
        # Workers journaled every task; a serial resume recomputes nothing.
        assert len(journal) >= len(items)
        resumed = ResilientExecutor(checkpoint=journal)
        calls = []

        def spy(x):
            calls.append(x)
            return _square(x)

        spy.__module__ = _square.__module__
        spy.__qualname__ = _square.__qualname__
        assert resumed.map_ordered(spy, items) == expected
        assert calls == []
