"""Watchdog stall detection, driven by fake clocks and a fake kill."""

import json
import os
import pickle

import pytest

from repro.errors import ConfigError
from repro.runtime import HeartbeatWriter, TaskHeartbeat, Watchdog


class FakeClock:
    def __init__(self, t=1000.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


@pytest.fixture()
def spool(tmp_path):
    return tmp_path / "heartbeats"


def _plant_beat(spool, pid, t, task="work"):
    """Write a heartbeat file for an arbitrary (possibly fictional) pid."""
    spool.mkdir(parents=True, exist_ok=True)
    path = spool / f"hb-{pid}.json"
    path.write_text(json.dumps({"pid": pid, "t": t, "task": task}))
    return path


def _free_pid():
    """A pid that does not currently exist on this machine."""
    pid = 2 ** 21 - 7
    while True:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return pid
        except PermissionError:
            pass
        pid -= 1


class TestHeartbeatWriter:
    def test_beat_writes_atomic_record(self, spool):
        clock = FakeClock(50.0)
        writer = HeartbeatWriter(spool, clock=clock)
        writer.beat(task="slice [weekday]")
        payload = json.loads(writer.path_for().read_text())
        assert payload == {
            "pid": os.getpid(), "t": 50.0, "task": "slice [weekday]",
        }
        assert not list(spool.glob("*.tmp.*"))  # tmp file was renamed away

    def test_clear_removes_the_file(self, spool):
        writer = HeartbeatWriter(spool)
        writer.beat()
        writer.clear()
        assert not writer.path_for().exists()
        writer.clear()  # idempotent


class TestTaskHeartbeat:
    def test_runs_the_task_and_beats_around_it(self, spool):
        shim = TaskHeartbeat(lambda x: x * 2, spool)
        assert shim(21) == 42
        payload = json.loads((spool / f"hb-{os.getpid()}.json").read_text())
        assert payload["task"] == ""  # the after-beat marks the task done

    def test_mirrors_wrapped_identity(self, spool):
        def my_task(x):
            return x

        shim = TaskHeartbeat(my_task, spool)
        assert shim.__qualname__.endswith("my_task")

    def test_survives_pickling(self, spool):
        shim = TaskHeartbeat(len, spool)
        clone = pickle.loads(pickle.dumps(shim))
        assert clone([1, 2, 3]) == 3
        assert clone.spool_dir == str(spool)


class TestWatchdog:
    def test_rejects_bad_timeout(self, spool):
        with pytest.raises(ConfigError):
            Watchdog(spool, stall_timeout_s=0.0)

    def test_fresh_beats_are_left_alone(self, spool):
        clock = FakeClock()
        kills = []
        dog = Watchdog(spool, stall_timeout_s=30.0, kill=kills.append,
                       clock=clock)
        _plant_beat(spool, _free_pid(), t=clock.t - 5.0)
        assert dog.scan_once() == []
        assert kills == []

    def test_stalled_live_pid_is_killed_and_recorded(self, spool):
        clock = FakeClock()
        kills = []
        dog = Watchdog(spool, stall_timeout_s=30.0, kill=kills.append,
                       clock=clock)
        # Use a real live pid that is not us: our parent.
        pid = os.getppid()
        path = _plant_beat(spool, pid, t=clock.t)
        clock.advance(31.0)
        assert dog.scan_once() == [pid]
        assert kills == [pid]
        assert dog.kills == [pid]
        assert not path.exists()  # heartbeat file cleaned up after the kill

    def test_never_kills_its_own_process(self, spool):
        clock = FakeClock()
        kills = []
        dog = Watchdog(spool, stall_timeout_s=30.0, kill=kills.append,
                       clock=clock)
        _plant_beat(spool, os.getpid(), t=clock.t)
        clock.advance(1000.0)
        assert dog.scan_once() == []
        assert kills == []

    def test_dead_pid_file_is_cleaned_not_killed(self, spool):
        clock = FakeClock()
        kills = []
        dog = Watchdog(spool, stall_timeout_s=30.0, kill=kills.append,
                       clock=clock)
        path = _plant_beat(spool, _free_pid(), t=clock.t)
        clock.advance(1000.0)
        assert dog.scan_once() == []
        assert kills == []
        assert not path.exists()  # crash recovery's territory: just tidy up

    def test_garbage_heartbeat_files_are_ignored(self, spool):
        spool.mkdir(parents=True, exist_ok=True)
        (spool / "hb-999.json").write_text("{torn")
        (spool / "hb-998.json").write_text('"not a dict"')
        dog = Watchdog(spool, stall_timeout_s=30.0, kill=lambda pid: None)
        assert dog.scan_once() == []

    def test_thread_lifecycle_is_idempotent(self, spool):
        dog = Watchdog(spool, stall_timeout_s=30.0, poll_interval_s=0.01,
                       kill=lambda pid: None)
        with dog:
            dog.start()  # second start is a no-op
            assert dog._thread.is_alive()
        assert dog._thread is None
        dog.stop()  # second stop is a no-op
