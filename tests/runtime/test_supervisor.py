"""Supervisor composition: scalar coercions, scope, shed log, summary."""

import pytest

from repro.runtime import (
    CircuitBreaker,
    Deadline,
    MemoryGovernor,
    Supervisor,
    Watchdog,
    active_deadline,
    active_supervisor,
)


class TestCoercions:
    def test_idle_by_default(self, tmp_path):
        supervisor = Supervisor(workdir=tmp_path)
        assert not supervisor.enabled
        assert supervisor.deadline is None
        assert supervisor.breaker is None
        assert supervisor.watchdog is None
        assert supervisor.memory is None

    def test_scalars_build_components(self, tmp_path):
        supervisor = Supervisor(
            deadline_s=120.0, breaker=True, watchdog=15.0,
            memory_budget_mb=64.0, workdir=tmp_path,
        )
        assert supervisor.enabled
        assert supervisor.deadline.budget_s == 120.0
        assert supervisor.breaker.name == "stage"
        assert supervisor.watchdog.stall_timeout_s == 15.0
        assert supervisor.memory.soft_limit_bytes == 64 * 1024 * 1024

    def test_prebuilt_components_pass_through(self, tmp_path):
        deadline = Deadline(5.0)
        breaker = CircuitBreaker(name="ingest")
        watchdog = Watchdog(tmp_path / "hb", stall_timeout_s=3.0)
        governor = MemoryGovernor(1 << 20)
        supervisor = Supervisor(
            deadline_s=deadline, breaker=breaker, watchdog=watchdog,
            memory_budget_mb=governor, workdir=tmp_path,
        )
        assert supervisor.deadline is deadline
        assert supervisor.breaker is breaker
        assert supervisor.watchdog is watchdog
        assert supervisor.memory is governor

    def test_watchdog_true_uses_default_stall(self, tmp_path):
        supervisor = Supervisor(watchdog=True, workdir=tmp_path)
        assert supervisor.watchdog.stall_timeout_s == 30.0


class TestScope:
    def test_scope_installs_supervisor_and_deadline(self, tmp_path):
        supervisor = Supervisor(deadline_s=60.0, workdir=tmp_path)
        assert active_supervisor() is None
        with supervisor.scope() as entered:
            assert entered is supervisor
            assert active_supervisor() is supervisor
            assert active_deadline() is supervisor.deadline
        assert active_supervisor() is None
        assert active_deadline() is None

    def test_scope_runs_the_watchdog_thread(self, tmp_path):
        supervisor = Supervisor(watchdog=5.0, workdir=tmp_path)
        supervisor.watchdog.poll_interval_s = 0.01
        with supervisor.scope():
            assert supervisor.watchdog._thread.is_alive()
        assert supervisor.watchdog._thread is None

    def test_scope_uninstalls_on_error(self, tmp_path):
        supervisor = Supervisor(deadline_s=60.0, workdir=tmp_path)
        with pytest.raises(RuntimeError):
            with supervisor.scope():
                raise RuntimeError("boom")
        assert active_supervisor() is None
        assert active_deadline() is None


class TestShedAndSummary:
    def test_shed_records_locally_and_in_obs(self, tmp_path):
        import repro.obs as obs

        supervisor = Supervisor(deadline_s=60.0, workdir=tmp_path)
        with obs.session(enabled=True) as ctx:
            supervisor.shed(
                "deadline_exceeded", task="slice [weekend]",
                detail="sweep task shed: deadline spent",
            )
        assert supervisor.shed_log == [{
            "kind": "deadline_exceeded", "task": "slice [weekend]",
            "detail": "sweep task shed: deadline spent",
        }]
        assert any(
            d.get("kind") == "deadline_exceeded" for d in ctx.degradations
        )

    def test_summary_covers_configured_components(self, tmp_path):
        supervisor = Supervisor(
            deadline_s=60.0, breaker=True, watchdog=10.0,
            memory_budget_mb=32.0, workdir=tmp_path,
        )
        summary = supervisor.summary()
        assert summary["shed"] == 0
        assert summary["deadline_s"] == 60.0
        assert summary["deadline_elapsed_s"] >= 0.0
        assert summary["breaker_state"] == "closed"
        assert summary["breaker_trips"] == 0
        assert summary["watchdog_kills"] == 0
        assert summary["memory"]["n_spills"] == 0

    def test_idle_summary_is_minimal(self, tmp_path):
        assert Supervisor(workdir=tmp_path).summary() == {"shed": 0}


class TestExportGauges:
    def test_scope_exports_supervision_state_as_gauges(self, tmp_path):
        import repro.obs as obs

        with obs.session(enabled=True):
            supervisor = Supervisor(
                deadline_s=60.0, memory_budget_mb=64, breaker=True,
                watchdog=True, workdir=tmp_path)
            with supervisor.scope():
                pass
            snapshot = obs.metrics().snapshot()
            assert snapshot["autosens_breaker_state"]["series"][
                '{breaker="stage"}'] == 0.0
            assert snapshot["autosens_memory_governor_bytes"]["series"][
                ""] == 0.0
            assert snapshot["autosens_watchdog_requeues"]["series"][""] == 0.0
            remaining = snapshot["autosens_deadline_remaining_s"]["series"][""]
            assert 0.0 < remaining <= 60.0

    def test_deterministic_runs_skip_the_wall_clock_gauge(self, tmp_path):
        import repro.obs as obs

        with obs.session(enabled=True, deterministic=True):
            supervisor = Supervisor(deadline_s=60.0, workdir=tmp_path)
            with supervisor.scope():
                pass
            assert ("autosens_deadline_remaining_s"
                    not in obs.metrics().snapshot())

    def test_disabled_obs_exports_nothing(self, tmp_path):
        import repro.obs as obs

        supervisor = Supervisor(deadline_s=5.0, workdir=tmp_path)
        supervisor.export_gauges()
        assert len(obs.metrics()) == 0

    def test_scope_publishes_supervisor_events_when_live(self, tmp_path):
        import repro.obs as obs

        with obs.session(enabled=True):
            sink = obs.attach_sink(obs.EventSink())
            supervisor = Supervisor(deadline_s=60.0, breaker=True,
                                    workdir=tmp_path)
            with supervisor.scope():
                pass
            scope_events = [e for e in sink.tail()
                            if e["type"] == "supervisor"
                            and e.get("component") == "scope"]
            assert [e["phase"] for e in scope_events] == ["enter", "exit"]
            assert scope_events[0]["concerns"] == ["deadline", "breaker"]
