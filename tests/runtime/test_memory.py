"""Memory governor: estimation, admission control, and the spill tier."""

import dataclasses

import numpy as np
import pytest

from repro.errors import ConfigError, MemoryBudgetError
from repro.runtime import MemoryGovernor, estimate_counts_bytes, estimate_nbytes


class TestEstimateNbytes:
    def test_arrays_count_their_payload(self):
        arr = np.zeros((100, 50), dtype=np.float64)
        assert estimate_nbytes(arr) == 100 * 50 * 8

    def test_containers_recurse(self):
        payload = {"a": np.zeros(1000), "b": [np.zeros(500), np.zeros(500)]}
        assert estimate_nbytes(payload) >= 2000 * 8

    def test_dataclasses_recurse(self):
        @dataclasses.dataclass
        class Box:
            data: np.ndarray
            label: str

        box = Box(data=np.zeros(256), label="x")
        assert estimate_nbytes(box) >= 256 * 8

    def test_scalars_are_small(self):
        assert 0 < estimate_nbytes(3.14) < 1024


class TestEstimateCountsBytes:
    def test_matches_the_tensor_geometry(self):
        # 2 float64 (slots, bins) tensors + 5 per-action columns + the draw.
        got = estimate_counts_bytes(
            n_actions=1000, n_bins=32, n_slots=24, oversample=3.0
        )
        assert got == 2 * 24 * 32 * 8 + 5 * 1000 * 8 + 3000 * 8

    def test_scales_with_actions(self):
        small = estimate_counts_bytes(100, 32)
        large = estimate_counts_bytes(100_000, 32)
        assert large > small * 100


class TestAdmission:
    def test_rejects_bad_limits(self):
        with pytest.raises(ConfigError):
            MemoryGovernor(0)
        with pytest.raises(ConfigError):
            MemoryGovernor(1000, hard_limit_bytes=500)

    def test_admit_passes_within_budget(self):
        MemoryGovernor(1 << 20).admit(1 << 10)  # must not raise

    def test_admit_refuses_past_the_hard_limit(self):
        governor = MemoryGovernor(1 << 10)
        with pytest.raises(MemoryBudgetError) as info:
            governor.admit(1 << 20, what="slice [weekday]")
        assert "slice [weekday]" in str(info.value)
        assert info.value.requested_bytes == 1 << 20
        assert info.value.budget_bytes == 1 << 10
        assert governor.n_refused == 1

    def test_max_concurrent_bounds_fanout(self):
        governor = MemoryGovernor(1000)
        assert governor.max_concurrent(per_task_bytes=300, n_tasks=10) == 3
        assert governor.max_concurrent(per_task_bytes=1, n_tasks=2) == 2
        assert governor.max_concurrent(per_task_bytes=99999, n_tasks=10) == 1
        assert governor.max_concurrent(per_task_bytes=0, n_tasks=10) == 10


class TestSpillTier:
    def test_hold_and_fetch_in_memory(self):
        governor = MemoryGovernor(1 << 30)
        value = np.arange(100)
        governor.hold("k", value)
        hit, got = governor.fetch("k")
        assert hit and got is value

    def test_lru_spill_round_trips_bit_identically(self, tmp_path):
        governor = MemoryGovernor(
            soft_limit_bytes=1024, hard_limit_bytes=1 << 30,
            spill_dir=tmp_path,
        )
        values = {f"slice{i}": np.random.default_rng(i).normal(size=100)
                  for i in range(4)}
        for key, value in values.items():
            governor.hold(key, value, nbytes=value.nbytes)
        assert governor.n_spills >= 2  # 4 × 800B against a 1KiB soft limit
        assert governor.held_bytes() <= 2 * 800
        for key, value in values.items():
            hit, got = governor.fetch(key)
            assert hit, f"{key} lost in the spill tier"
            np.testing.assert_array_equal(got, value)

    def test_without_spill_dir_everything_stays_held(self):
        governor = MemoryGovernor(soft_limit_bytes=16)
        for i in range(5):
            governor.hold(i, np.zeros(100))
        assert governor.n_spills == 0
        assert governor.stats()["held_entries"] == 5

    def test_the_newest_entry_is_never_spilled(self, tmp_path):
        governor = MemoryGovernor(soft_limit_bytes=8, spill_dir=tmp_path)
        governor.hold("only", np.zeros(100))
        assert governor.n_spills == 0  # len(_held) > 1 guard

    def test_release_forgets_both_tiers(self, tmp_path):
        governor = MemoryGovernor(soft_limit_bytes=64, spill_dir=tmp_path)
        governor.hold("a", np.zeros(100))
        governor.hold("b", np.zeros(100))  # spills "a"
        governor.release("a")
        governor.release("b")
        assert governor.fetch("a") == (False, None)
        assert governor.fetch("b") == (False, None)
        assert governor.stats()["held_entries"] == 0

    def test_stats_shape(self, tmp_path):
        governor = MemoryGovernor(soft_limit_bytes=64, spill_dir=tmp_path)
        governor.hold("a", np.zeros(100))
        stats = governor.stats()
        assert set(stats) == {
            "held_entries", "held_bytes", "spilled_entries",
            "n_spills", "n_refused", "soft_limit_bytes", "hard_limit_bytes",
        }

    def test_of_mb_converts(self):
        governor = MemoryGovernor.of_mb(2.0)
        assert governor.soft_limit_bytes == 2 * 1024 * 1024
