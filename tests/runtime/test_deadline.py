"""Deadline budgets and the ambient cooperative-cancellation checkpoint."""

import pytest

from repro.errors import ConfigError, DeadlineExceededError
from repro.runtime import (
    Deadline,
    active_deadline,
    check_deadline,
    deadline_scope,
)


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class TestDeadline:
    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ConfigError):
            Deadline(0.0)
        with pytest.raises(ConfigError):
            Deadline(-5.0)

    def test_elapsed_and_remaining(self):
        clock = FakeClock()
        deadline = Deadline(10.0, clock=clock)
        clock.advance(3.0)
        assert deadline.elapsed() == pytest.approx(3.0)
        assert deadline.remaining() == pytest.approx(7.0)
        assert not deadline.expired()

    def test_remaining_clamps_at_zero(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        clock.advance(5.0)
        assert deadline.remaining() == 0.0
        assert deadline.expired()

    def test_check_raises_with_context(self):
        clock = FakeClock()
        deadline = Deadline(2.0, clock=clock)
        deadline.check("sweep")  # within budget: no-op
        clock.advance(2.0)
        with pytest.raises(DeadlineExceededError) as info:
            deadline.check("sweep")
        assert "sweep" in str(info.value)
        assert info.value.budget_s == 2.0
        assert info.value.elapsed_s >= 2.0

    def test_timeout_or_takes_the_tighter_bound(self):
        clock = FakeClock()
        deadline = Deadline(10.0, clock=clock)
        assert deadline.timeout_or(None) == pytest.approx(10.0)
        assert deadline.timeout_or(3.0) == pytest.approx(3.0)
        clock.advance(9.0)
        assert deadline.timeout_or(3.0) == pytest.approx(1.0)


class TestAmbientScope:
    def test_no_deadline_installed(self):
        assert active_deadline() is None
        check_deadline("anywhere")  # no-op, must not raise

    def test_scope_installs_and_uninstalls(self):
        deadline = Deadline(60.0)
        with deadline_scope(deadline) as installed:
            assert installed is deadline
            assert active_deadline() is deadline
        assert active_deadline() is None

    def test_none_scope_is_a_noop(self):
        with deadline_scope(None) as installed:
            assert installed is None
            assert active_deadline() is None

    def test_scopes_nest_innermost_wins(self):
        outer, inner = Deadline(60.0), Deadline(30.0)
        with deadline_scope(outer):
            with deadline_scope(inner):
                assert active_deadline() is inner
            assert active_deadline() is outer
        assert active_deadline() is None

    def test_checkpoint_observes_ambient_expiry(self):
        clock = FakeClock()
        with deadline_scope(Deadline(1.0, clock=clock)):
            check_deadline("stage")
            clock.advance(1.5)
            with pytest.raises(DeadlineExceededError):
                check_deadline("stage")

    def test_scope_pops_even_on_error(self):
        with pytest.raises(RuntimeError):
            with deadline_scope(Deadline(60.0)):
                raise RuntimeError("boom")
        assert active_deadline() is None
