"""Circuit breaker state machine, driven by a fake clock (no sleeping)."""

import pytest

from repro.errors import CircuitOpenError, ConfigError
from repro.runtime import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def _failing(exc=OSError):
    def fn():
        raise exc("dependency down")
    return fn


class TestValidation:
    def test_rejects_bad_threshold(self):
        with pytest.raises(ConfigError):
            CircuitBreaker(failure_threshold=0)

    def test_rejects_bad_cooldown(self):
        with pytest.raises(ConfigError):
            CircuitBreaker(reset_timeout_s=0.0)


class TestStateMachine:
    def test_starts_closed_and_allows(self):
        breaker = CircuitBreaker()
        assert breaker.state == CLOSED
        assert breaker.allow()
        assert breaker.retry_after() == 0.0

    def test_trips_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, clock=FakeClock())
        fn = _failing()
        for _ in range(2):
            with pytest.raises(OSError):
                breaker.call(fn)
        assert breaker.state == CLOSED
        with pytest.raises(OSError):
            breaker.call(fn)
        assert breaker.state == OPEN
        assert breaker.n_trips == 1

    def test_success_resets_the_failure_count(self):
        breaker = CircuitBreaker(failure_threshold=2)
        with pytest.raises(OSError):
            breaker.call(_failing())
        assert breaker.call(lambda: 42) == 42
        with pytest.raises(OSError):
            breaker.call(_failing())
        assert breaker.state == CLOSED  # count restarted after the success

    def test_open_refuses_without_calling(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=30.0,
                                 clock=FakeClock())
        with pytest.raises(OSError):
            breaker.call(_failing())
        calls = []
        with pytest.raises(CircuitOpenError) as info:
            breaker.call(lambda: calls.append(1))
        assert calls == []  # refused, not executed
        assert info.value.breaker_name == "default"
        assert info.value.retry_after_s == pytest.approx(30.0)
        assert breaker.n_refused == 1

    def test_cooldown_admits_probe_then_closes_on_success(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=10.0,
                                 clock=clock)
        with pytest.raises(OSError):
            breaker.call(_failing())
        assert breaker.state == OPEN
        clock.advance(10.0)
        assert breaker.state == HALF_OPEN
        assert breaker.call(lambda: "ok") == "ok"
        assert breaker.state == CLOSED

    def test_failed_probe_reopens_with_fresh_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=10.0,
                                 clock=clock)
        with pytest.raises(OSError):
            breaker.call(_failing())
        clock.advance(10.0)
        assert breaker.state == HALF_OPEN
        with pytest.raises(OSError):
            breaker.call(_failing())
        assert breaker.state == OPEN
        assert breaker.n_trips == 2
        assert breaker.retry_after() == pytest.approx(10.0)

    def test_excluded_exceptions_do_not_count(self):
        breaker = CircuitBreaker(failure_threshold=1, excluded=(ValueError,))
        with pytest.raises(ValueError):
            breaker.call(_failing(ValueError))
        assert breaker.state == CLOSED  # data errors fail the call only
        with pytest.raises(OSError):
            breaker.call(_failing(OSError))
        assert breaker.state == OPEN

    def test_wrap_preserves_identity(self):
        breaker = CircuitBreaker()

        def stage():
            """Docs ride along."""
            return 7

        guarded = breaker.wrap(stage)
        assert guarded() == 7
        assert guarded.__qualname__.endswith("stage")
        assert guarded.__doc__ == "Docs ride along."
