"""Contract tests for the public API surface.

Every name a package exports must resolve, and every public callable must
carry a docstring — the minimum bar for "a library a downstream user would
adopt".
"""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.workload",
    "repro.telemetry",
    "repro.stats",
    "repro.analysis",
    "repro.viz",
    "repro.obs",
    "repro.parallel",
    "repro.faults",
    "repro.runtime",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__"), f"{package_name} has no __all__"
    for name in package.__all__:
        assert getattr(package, name, None) is not None, (
            f"{package_name}.__all__ lists {name!r} but it does not resolve"
        )


@pytest.mark.parametrize("package_name", PACKAGES)
def test_public_callables_documented(package_name):
    package = importlib.import_module(package_name)
    undocumented = []
    for name in package.__all__:
        obj = getattr(package, name)
        if inspect.isfunction(obj) or inspect.isclass(obj):
            if not (obj.__doc__ or "").strip():
                undocumented.append(name)
    assert not undocumented, (
        f"{package_name} exports callables without docstrings: {undocumented}"
    )


def test_version_is_consistent():
    import repro
    from repro._version import __version__

    assert repro.__version__ == __version__
    parts = __version__.split(".")
    assert len(parts) == 3 and all(p.isdigit() for p in parts)


def test_lazy_root_exports():
    import repro

    assert repro.AutoSens.__name__ == "AutoSens"
    assert callable(repro.owa_scenario)
    assert callable(repro.generate_telemetry)
    with pytest.raises(AttributeError):
        repro.does_not_exist


def test_error_hierarchy():
    from repro import errors

    for name in ("SchemaError", "EmptyDataError", "InsufficientDataError",
                 "ConfigError", "PrivacyError", "DeadlineExceededError",
                 "CircuitOpenError", "MemoryBudgetError"):
        exc = getattr(errors, name)
        assert issubclass(exc, errors.ReproError)
