"""Unit and property tests for the fixed-width histogram."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, EmptyDataError
from repro.stats.histogram import Histogram1D, HistogramBins, latency_bins


class TestHistogramBins:
    def test_count_and_edges(self):
        bins = HistogramBins(0.0, 100.0, 10.0)
        assert bins.count == 10
        assert bins.edges[0] == 0.0
        assert bins.edges[-1] == 100.0
        assert len(bins.edges) == 11

    def test_centers(self):
        bins = HistogramBins(0.0, 30.0, 10.0)
        assert np.allclose(bins.centers, [5.0, 15.0, 25.0])

    def test_index_of_interior(self):
        bins = HistogramBins(0.0, 100.0, 10.0)
        assert bins.index_of(np.array([0.0, 9.99, 10.0, 99.9])).tolist() == [0, 0, 1, 9]

    def test_index_of_out_of_range(self):
        bins = HistogramBins(0.0, 100.0, 10.0)
        assert bins.index_of(np.array([-1.0, 100.0, 150.0])).tolist() == [-1, -1, -1]

    def test_clip_index(self):
        bins = HistogramBins(0.0, 100.0, 10.0)
        assert bins.clip_index_of(np.array([-5.0, 250.0])).tolist() == [0, 9]

    def test_rejects_inverted_range(self):
        with pytest.raises(ConfigError):
            HistogramBins(10.0, 0.0, 1.0)

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ConfigError):
            HistogramBins(0.0, 10.0, 0.0)

    def test_rejects_uneven_width(self):
        with pytest.raises(ConfigError):
            HistogramBins(0.0, 10.0, 3.0)

    def test_latency_bins_default(self):
        bins = latency_bins()
        assert bins.width == 10.0
        assert bins.low == 0.0
        assert bins.count == 300


class TestHistogram1D:
    def test_add_and_total(self):
        hist = Histogram1D(HistogramBins(0.0, 100.0, 10.0))
        hist.add([5.0, 15.0, 15.0])
        assert hist.total == 3.0
        assert hist.counts[0] == 1.0
        assert hist.counts[1] == 2.0

    def test_add_with_weights(self):
        hist = Histogram1D(HistogramBins(0.0, 100.0, 10.0))
        hist.add([5.0, 15.0], weights=[2.0, 0.5])
        assert hist.counts[0] == 2.0
        assert hist.counts[1] == 0.5

    def test_dropped_out_of_range(self):
        hist = Histogram1D(HistogramBins(0.0, 100.0, 10.0))
        hist.add([5.0, 500.0])
        assert hist.total == 1.0
        assert hist.dropped == 1.0

    def test_clip_mode_keeps_everything(self):
        hist = Histogram1D(HistogramBins(0.0, 100.0, 10.0), clip=True)
        hist.add([5.0, 500.0])
        assert hist.total == 2.0
        assert hist.counts[-1] == 1.0

    def test_pdf_integrates_to_one(self):
        hist = Histogram1D(HistogramBins(0.0, 100.0, 10.0))
        hist.add(np.linspace(1, 99, 57))
        assert np.isclose(hist.pdf().sum() * 10.0, 1.0)

    def test_pmf_sums_to_one(self):
        hist = Histogram1D(HistogramBins(0.0, 100.0, 10.0))
        hist.add(np.linspace(1, 99, 33))
        assert np.isclose(hist.pmf().sum(), 1.0)

    def test_empty_pdf_raises(self):
        hist = Histogram1D(HistogramBins(0.0, 100.0, 10.0))
        with pytest.raises(EmptyDataError):
            hist.pdf()

    def test_mean_matches_bin_centers(self):
        hist = Histogram1D(HistogramBins(0.0, 100.0, 10.0))
        hist.add([5.0, 5.0, 25.0])
        assert np.isclose(hist.mean(), (5 + 5 + 25) / 3.0)

    def test_quantile_median(self):
        hist = Histogram1D(HistogramBins(0.0, 100.0, 10.0))
        hist.add(np.full(100, 45.0))
        assert 40.0 <= hist.quantile(0.5) <= 50.0

    def test_quantile_range_validation(self):
        hist = Histogram1D(HistogramBins(0.0, 100.0, 10.0))
        hist.add([5.0])
        with pytest.raises(ConfigError):
            hist.quantile(1.5)

    def test_scaled(self):
        hist = Histogram1D(HistogramBins(0.0, 100.0, 10.0))
        hist.add([5.0, 15.0])
        doubled = hist.scaled(2.0)
        assert doubled.total == 4.0
        assert hist.total == 2.0  # original untouched

    def test_merged(self):
        bins = HistogramBins(0.0, 100.0, 10.0)
        a = Histogram1D(bins)
        a.add([5.0])
        b = Histogram1D(bins)
        b.add([15.0, 15.0])
        merged = a.merged(b)
        assert merged.total == 3.0
        assert merged.counts[1] == 2.0

    def test_merge_rejects_different_grids(self):
        a = Histogram1D(HistogramBins(0.0, 100.0, 10.0))
        b = Histogram1D(HistogramBins(0.0, 200.0, 10.0))
        with pytest.raises(ConfigError):
            a.merged(b)

    def test_ratio_to(self):
        bins = HistogramBins(0.0, 30.0, 10.0)
        a = Histogram1D(bins)
        a.add([5.0, 15.0, 15.0])
        b = Histogram1D(bins)
        b.add([5.0, 15.0, 25.0])
        ratio = a.ratio_to(b)
        assert np.isclose(ratio[0], 1.0)
        assert np.isclose(ratio[1], 2.0)
        # a has no mass at 25 -> ratio 0; b has mass so defined.
        assert np.isclose(ratio[2], 0.0)

    def test_ratio_nan_where_denominator_empty(self):
        bins = HistogramBins(0.0, 30.0, 10.0)
        a = Histogram1D(bins)
        a.add([5.0, 25.0])
        b = Histogram1D(bins)
        b.add([5.0])
        ratio = a.ratio_to(b)
        assert np.isnan(ratio[2])

    def test_add_counts_shape_check(self):
        hist = Histogram1D(HistogramBins(0.0, 30.0, 10.0))
        with pytest.raises(ConfigError):
            hist.add_counts(np.ones(5))

    def test_equality(self):
        bins = HistogramBins(0.0, 30.0, 10.0)
        a = Histogram1D(bins)
        b = Histogram1D(bins)
        a.add([5.0])
        b.add([5.0])
        assert a == b


@given(st.lists(st.floats(min_value=0.0, max_value=99.0), min_size=1, max_size=300))
@settings(max_examples=60, deadline=None)
def test_mass_conservation(values):
    """Property: total equals the number of in-range samples."""
    hist = Histogram1D(HistogramBins(0.0, 100.0, 10.0))
    hist.add(values)
    assert hist.total == len(values)
    assert hist.dropped == 0.0


@given(
    st.lists(st.floats(min_value=0.0, max_value=99.0), min_size=1, max_size=100),
    st.lists(st.floats(min_value=0.0, max_value=99.0), min_size=1, max_size=100),
)
@settings(max_examples=40, deadline=None)
def test_merge_commutes(a_vals, b_vals):
    """Property: merge is commutative on counts."""
    bins = HistogramBins(0.0, 100.0, 10.0)
    a = Histogram1D(bins)
    a.add(a_vals)
    b = Histogram1D(bins)
    b.add(b_vals)
    assert np.allclose(a.merged(b).counts, b.merged(a).counts)


@given(st.lists(st.floats(min_value=0.0, max_value=99.0), min_size=2, max_size=200))
@settings(max_examples=40, deadline=None)
def test_quantiles_monotone(values):
    """Property: the quantile function is non-decreasing."""
    hist = Histogram1D(HistogramBins(0.0, 100.0, 10.0))
    hist.add(values)
    qs = [hist.quantile(q) for q in (0.1, 0.25, 0.5, 0.75, 0.9)]
    assert all(a <= b + 1e-9 for a, b in zip(qs, qs[1:]))
