"""Tests for Ornstein-Uhlenbeck / AR(1) processes."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.stats.ou_process import OrnsteinUhlenbeck, ar1_series


class TestOU:
    def test_stationary_moments(self):
        ou = OrnsteinUhlenbeck(mean=5.0, tau=50.0, sigma=2.0)
        path = ou.sample_path(200_000, dt=10.0, rng=1)
        assert abs(path.mean() - 5.0) < 0.15
        assert abs(path.std() - 2.0) < 0.15

    def test_autocorrelation_decay(self):
        ou = OrnsteinUhlenbeck(tau=100.0, sigma=1.0)
        path = ou.sample_path(100_000, dt=10.0, rng=2)
        lag = 10  # 100 s = tau -> expect exp(-1)
        centered = path - path.mean()
        rho = np.dot(centered[:-lag], centered[lag:]) / np.dot(centered, centered)
        assert abs(rho - np.exp(-1.0)) < 0.1

    def test_theoretical_autocorrelation(self):
        ou = OrnsteinUhlenbeck(tau=100.0)
        assert np.isclose(ou.autocorrelation(100.0), np.exp(-1.0))
        assert ou.autocorrelation(0.0) == 1.0

    def test_x0_respected(self):
        ou = OrnsteinUhlenbeck(tau=1e9, sigma=0.0)
        path = ou.sample_path(5, dt=1.0, rng=3, x0=7.0)
        assert np.allclose(path, 7.0, atol=1e-6)

    def test_zero_steps(self):
        assert OrnsteinUhlenbeck().sample_path(0, dt=1.0, rng=4).size == 0

    def test_rejects_bad_tau(self):
        with pytest.raises(ConfigError):
            OrnsteinUhlenbeck(tau=0.0)

    def test_rejects_bad_dt(self):
        with pytest.raises(ConfigError):
            OrnsteinUhlenbeck().sample_path(10, dt=0.0)

    def test_deterministic_with_seed(self):
        ou = OrnsteinUhlenbeck()
        a = ou.sample_path(100, dt=1.0, rng=5)
        b = ou.sample_path(100, dt=1.0, rng=5)
        assert np.array_equal(a, b)


class TestAR1:
    def test_stationary_variance(self):
        series = ar1_series(100_000, phi=0.8, sigma=3.0, rng=6)
        assert abs(series.std() - 3.0) < 0.2

    def test_mean(self):
        series = ar1_series(50_000, phi=0.5, sigma=1.0, mean=-2.0, rng=7)
        assert abs(series.mean() + 2.0) < 0.1

    def test_lag1_correlation_is_phi(self):
        series = ar1_series(100_000, phi=0.7, rng=8)
        centered = series - series.mean()
        rho = np.dot(centered[:-1], centered[1:]) / np.dot(centered, centered)
        assert abs(rho - 0.7) < 0.05

    def test_rejects_nonstationary_phi(self):
        with pytest.raises(ConfigError):
            ar1_series(10, phi=1.0)

    def test_rejects_negative_n(self):
        with pytest.raises(ConfigError):
            ar1_series(-1, phi=0.5)
