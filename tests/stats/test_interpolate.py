"""Tests for the monotone (Fritsch-Carlson) cubic interpolator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.stats.interpolate import MonotoneCubicInterpolator


class TestBasics:
    def test_hits_anchors(self):
        interp = MonotoneCubicInterpolator([0.0, 1.0, 2.0], [0.0, 2.0, 3.0])
        assert np.allclose(interp(np.array([0.0, 1.0, 2.0])), [0.0, 2.0, 3.0])

    def test_linear_data_stays_linear(self):
        interp = MonotoneCubicInterpolator([0.0, 1.0, 2.0, 3.0], [1.0, 2.0, 3.0, 4.0])
        queries = np.linspace(0, 3, 31)
        assert np.allclose(interp(queries), queries + 1.0, atol=1e-9)

    def test_clamped_extrapolation(self):
        interp = MonotoneCubicInterpolator([1.0, 2.0], [5.0, 7.0])
        assert interp(np.array([-10.0]))[0] == 5.0
        assert interp(np.array([100.0]))[0] == 7.0

    def test_scalar_query(self):
        interp = MonotoneCubicInterpolator([0.0, 1.0], [0.0, 1.0])
        assert np.isclose(float(interp(0.5)), 0.5)

    def test_rejects_short_input(self):
        with pytest.raises(ConfigError):
            MonotoneCubicInterpolator([1.0], [1.0])

    def test_rejects_unsorted(self):
        with pytest.raises(ConfigError):
            MonotoneCubicInterpolator([1.0, 0.5], [1.0, 2.0])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ConfigError):
            MonotoneCubicInterpolator([0.0, 1.0, 2.0], [1.0, 2.0])

    def test_matches_scipy_pchip_closely(self):
        pchip = pytest.importorskip("scipy.interpolate").PchipInterpolator
        xs = [0.0, 1.0, 2.5, 4.0, 7.0]
        ys = [1.0, 0.9, 0.5, 0.45, 0.44]
        ours = MonotoneCubicInterpolator(xs, ys)
        theirs = pchip(xs, ys)
        queries = np.linspace(0, 7, 100)
        # Different tangent rules allowed; curves should agree loosely.
        assert np.max(np.abs(ours(queries) - theirs(queries))) < 0.05


class TestMonotonicity:
    def test_no_overshoot_on_step(self):
        """Plain cubic splines overshoot step-like data; monotone must not."""
        interp = MonotoneCubicInterpolator(
            [0.0, 1.0, 2.0, 3.0], [0.0, 0.0, 1.0, 1.0]
        )
        queries = np.linspace(0, 3, 200)
        values = interp(queries)
        assert values.min() >= -1e-9
        assert values.max() <= 1.0 + 1e-9

    def test_derivative_zero_outside(self):
        interp = MonotoneCubicInterpolator([0.0, 1.0], [0.0, 1.0])
        assert interp.derivative(np.array([-1.0]))[0] == 0.0
        assert interp.derivative(np.array([5.0]))[0] == 0.0

    def test_derivative_sign_on_decreasing_data(self):
        interp = MonotoneCubicInterpolator(
            [0.0, 1.0, 2.0, 3.0], [4.0, 3.0, 1.0, 0.5]
        )
        queries = np.linspace(0.01, 2.99, 100)
        assert np.all(interp.derivative(queries) <= 1e-9)


@given(st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=3, max_size=10))
@settings(max_examples=60, deadline=None)
def test_monotone_preserving_property(deltas):
    """Property: on decreasing anchors the interpolant is decreasing."""
    xs = np.arange(len(deltas) + 1, dtype=float)
    ys = 100.0 - np.concatenate([[0.0], np.cumsum(deltas)])
    interp = MonotoneCubicInterpolator(xs, ys)
    queries = np.linspace(xs[0], xs[-1], 150)
    values = interp(queries)
    assert np.all(np.diff(values) <= 1e-7)
