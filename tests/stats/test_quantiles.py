"""Tests for exact and streaming (P-squared) quantiles."""

import numpy as np
import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, EmptyDataError
from repro.stats.quantiles import P2Quantile, exact_quantile


class TestExactQuantile:
    def test_median_odd(self):
        assert exact_quantile(np.array([3.0, 1.0, 2.0]), 0.5) == 2.0

    def test_extremes(self):
        values = np.arange(10.0)
        assert exact_quantile(values, 0.0) == 0.0
        assert exact_quantile(values, 1.0) == 9.0

    def test_empty_raises(self):
        with pytest.raises(EmptyDataError):
            exact_quantile(np.array([]), 0.5)

    def test_bad_q_raises(self):
        with pytest.raises(ConfigError):
            exact_quantile(np.array([1.0]), 1.5)


class TestP2:
    def test_first_five_exact(self):
        est = P2Quantile(0.5)
        for value in [5.0, 1.0, 4.0, 2.0, 3.0]:
            est.add(value)
        assert est.value() == 3.0

    def test_before_five_exact(self):
        est = P2Quantile(0.5)
        est.add(10.0)
        est.add(20.0)
        assert est.value() == 15.0

    def test_empty_raises(self):
        with pytest.raises(EmptyDataError):
            P2Quantile(0.5).value()

    def test_rejects_extreme_q(self):
        with pytest.raises(ConfigError):
            P2Quantile(0.0)

    def test_median_of_normal(self):
        rng = np.random.default_rng(1)
        est = P2Quantile(0.5)
        data = rng.normal(10.0, 2.0, 20_000)
        for value in data:
            est.add(value)
        assert abs(est.value() - np.median(data)) < 0.1

    def test_p90_of_uniform(self):
        rng = np.random.default_rng(2)
        est = P2Quantile(0.9)
        data = rng.uniform(0, 1, 20_000)
        for value in data:
            est.add(value)
        assert abs(est.value() - 0.9) < 0.02

    def test_count_tracks(self):
        est = P2Quantile(0.5)
        for i in range(7):
            est.add(float(i))
        assert est.count == 7

    def test_skewed_distribution(self):
        rng = np.random.default_rng(3)
        data = rng.lognormal(5.5, 0.6, 30_000)
        est = P2Quantile(0.5)
        for value in data:
            est.add(value)
        true = float(np.median(data))
        assert abs(est.value() - true) / true < 0.05


@given(st.lists(st.floats(min_value=-1e4, max_value=1e4), min_size=50, max_size=400),
       st.sampled_from([0.25, 0.5, 0.75]))
@settings(max_examples=40, deadline=None)
# Regression: heavy ties (mostly zeros) plus a handful of large-magnitude
# outliers push P2's parabolic interpolation to ~25% of the spread — just
# over the old 0.25 bound. P2 is a coarse sketch on tie-heavy discrete
# data, so the accuracy property allows 40% of spread; exactness on real
# latency-like distributions is covered by the seeded tests above.
@example(
    values=([2439.0, 2624.0, 1.0, -6692.0, -5397.0] + [0.0] * 3
            + [-3348.0] + [0.0] * 3 + [-5398.0] + [0.0] * 5
            + [-2795.0, -2795.0, -3393.0, -3888.0] + [0.0] * 28),
    q=0.25,
)
def test_p2_close_to_exact(values, q):
    """Property: P2 estimate lands inside the sample range and near exact."""
    est = P2Quantile(q)
    for value in values:
        est.add(value)
    result = est.value()
    arr = np.asarray(values)
    assert arr.min() <= result <= arr.max()
    exact = exact_quantile(arr, q)
    spread = arr.max() - arr.min()
    if spread > 0:
        assert abs(result - exact) <= 0.40 * spread
