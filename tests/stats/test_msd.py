"""Tests for the MSD/MAD (von Neumann) locality statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EmptyDataError
from repro.stats.msd import (
    compare_locality,
    mean_absolute_difference,
    mean_successive_difference,
    msd_mad_ratio,
    von_neumann_ratio,
)


class TestMSD:
    def test_constant_series(self):
        assert mean_successive_difference(np.ones(10)) == 0.0

    def test_alternating_series(self):
        values = np.array([0.0, 1.0, 0.0, 1.0])
        assert mean_successive_difference(values) == 1.0

    def test_needs_two_samples(self):
        with pytest.raises(EmptyDataError):
            mean_successive_difference(np.array([1.0]))


class TestMAD:
    def test_two_points(self):
        assert mean_absolute_difference(np.array([0.0, 4.0])) == 4.0

    def test_closed_form_matches_bruteforce(self):
        rng = np.random.default_rng(3)
        values = rng.normal(size=40)
        brute = np.abs(values[:, None] - values[None, :]).sum() / (40 * 39)
        assert np.isclose(mean_absolute_difference(values), brute)

    def test_invariant_to_order(self):
        rng = np.random.default_rng(4)
        values = rng.normal(size=100)
        shuffled = values.copy()
        rng.shuffle(shuffled)
        assert np.isclose(
            mean_absolute_difference(values), mean_absolute_difference(shuffled)
        )


class TestRatio:
    def test_sorted_is_small(self):
        assert msd_mad_ratio(np.arange(1000.0)) < 0.01

    def test_shuffled_is_near_one(self):
        rng = np.random.default_rng(5)
        values = rng.normal(size=5000)
        assert 0.9 < msd_mad_ratio(values) < 1.1

    def test_von_neumann_iid_expectation(self):
        """E[ratio] = 2n/(n-1) ~ 2 for i.i.d. data."""
        rng = np.random.default_rng(6)
        ratios = [von_neumann_ratio(rng.normal(size=500)) for _ in range(30)]
        assert 1.85 < np.mean(ratios) < 2.15

    def test_von_neumann_detects_positive_correlation(self):
        from repro.stats.ou_process import ar1_series

        values = ar1_series(4000, phi=0.95, rng=7)
        assert von_neumann_ratio(values) < 0.5

    def test_von_neumann_constant_series(self):
        assert von_neumann_ratio(np.ones(10)) == 0.0


class TestCompareLocality:
    def test_ou_series_shows_locality(self):
        from repro.stats.ou_process import ar1_series

        values = ar1_series(4000, phi=0.98, rng=8)
        comparison = compare_locality(values, rng=9)
        assert comparison.actual < comparison.shuffled
        assert comparison.sorted < comparison.actual
        assert comparison.locality_strength > 0.5

    def test_random_series_no_locality(self):
        rng = np.random.default_rng(10)
        comparison = compare_locality(rng.normal(size=3000), rng=11)
        assert comparison.locality_strength < 0.1

    def test_strength_clipped(self):
        comparison = compare_locality(np.arange(100.0), rng=12)
        assert 0.0 <= comparison.locality_strength <= 1.0


@given(st.lists(st.floats(min_value=-1e3, max_value=1e3), min_size=3, max_size=200)
       .filter(lambda v: len(set(v)) > 1))
@settings(max_examples=50, deadline=None)
def test_sorted_no_larger_than_original(values):
    """Property: sorting never increases MSD/MAD (MAD is order-invariant)."""
    values = np.asarray(values)
    assert msd_mad_ratio(np.sort(values)) <= msd_mad_ratio(values) + 1e-9


def test_constant_series_ratio_zero():
    """A constant series is perfectly predictable: ratio defined as 0."""
    assert msd_mad_ratio(np.full(50, 7.0)) == 0.0
