"""Tests for correlation, smoothing, bootstrap and RNG helpers."""

import numpy as np
import pytest

from repro.errors import ConfigError, EmptyDataError
from repro.stats.bootstrap import bootstrap_ci, bootstrap_curve_band
from repro.stats.correlation import pearson, spearman
from repro.stats.rng import RngFactory, spawn_rng
from repro.stats.smoothing import ewma, moving_average


class TestPearson:
    def test_perfect_positive(self):
        x = np.arange(10.0)
        assert np.isclose(pearson(x, 2 * x + 1), 1.0)

    def test_perfect_negative(self):
        x = np.arange(10.0)
        assert np.isclose(pearson(x, -x), -1.0)

    def test_constant_input_returns_zero(self):
        assert pearson(np.ones(5), np.arange(5.0)) == 0.0

    def test_nan_pairs_dropped(self):
        x = np.array([1.0, 2.0, np.nan, 4.0])
        y = np.array([1.0, 2.0, 3.0, 4.0])
        assert np.isclose(pearson(x, y), 1.0)

    def test_shape_mismatch(self):
        with pytest.raises(EmptyDataError):
            pearson(np.arange(3.0), np.arange(4.0))

    def test_independent_near_zero(self):
        rng = np.random.default_rng(0)
        assert abs(pearson(rng.normal(size=5000), rng.normal(size=5000))) < 0.05


class TestSpearman:
    def test_monotone_nonlinear(self):
        x = np.arange(1.0, 20.0)
        assert np.isclose(spearman(x, x**3), 1.0)

    def test_ties_handled(self):
        x = np.array([1.0, 1.0, 2.0, 3.0])
        y = np.array([1.0, 1.0, 2.0, 3.0])
        assert np.isclose(spearman(x, y), 1.0)

    def test_anticorrelated(self):
        x = np.arange(10.0)
        assert np.isclose(spearman(x, -np.exp(x)), -1.0)


class TestMovingAverage:
    def test_constant(self):
        assert np.allclose(moving_average(np.ones(10), 3), 1.0)

    def test_window_one_is_identity(self):
        values = np.arange(5.0)
        assert np.allclose(moving_average(values, 1), values)

    def test_nan_aware(self):
        values = np.array([1.0, np.nan, 3.0])
        out = moving_average(values, 3)
        assert np.isclose(out[1], 2.0)

    def test_rejects_bad_window(self):
        with pytest.raises(ConfigError):
            moving_average(np.ones(3), 0)


class TestEwma:
    def test_converges_to_constant(self):
        out = ewma(np.full(100, 5.0), alpha=0.3)
        assert np.allclose(out, 5.0)

    def test_nan_holds_state(self):
        out = ewma(np.array([1.0, np.nan, np.nan]), alpha=0.5)
        assert out[1] == 1.0 and out[2] == 1.0

    def test_rejects_bad_alpha(self):
        with pytest.raises(ConfigError):
            ewma(np.ones(3), alpha=0.0)


class TestBootstrap:
    def test_mean_ci_covers_truth(self):
        rng = np.random.default_rng(1)
        result = bootstrap_ci(rng.normal(10, 1, 500), np.mean, rng=2)
        assert result.low < 10.0 < result.high
        assert result.contains(result.estimate)

    def test_tight_for_large_n(self):
        rng = np.random.default_rng(3)
        result = bootstrap_ci(rng.normal(0, 1, 5000), np.mean,
                              n_resamples=300, rng=4)
        assert result.halfwidth < 0.1

    def test_empty_raises(self):
        with pytest.raises(EmptyDataError):
            bootstrap_ci(np.array([]))

    def test_curve_band_shapes(self):
        point = np.zeros(10)
        low, high = bootstrap_curve_band(
            lambda gen: gen.normal(0, 1, 10), point, n_resamples=100, rng=5
        )
        assert low.shape == point.shape
        assert np.all(low <= high)

    def test_curve_band_rejects_bad_resample(self):
        with pytest.raises(EmptyDataError):
            bootstrap_curve_band(lambda gen: np.zeros(3), np.zeros(5),
                                 n_resamples=2, rng=6)


class TestRng:
    def test_spawn_from_int_deterministic(self):
        a = spawn_rng(1).integers(0, 1000, 10)
        b = spawn_rng(1).integers(0, 1000, 10)
        assert np.array_equal(a, b)

    def test_spawn_passthrough_generator(self):
        gen = np.random.default_rng(0)
        assert spawn_rng(gen) is gen

    def test_factory_children_independent(self):
        factory = RngFactory(42)
        a = factory.child("a").integers(0, 10**9, 20)
        b = factory.child("b").integers(0, 10**9, 20)
        assert not np.array_equal(a, b)

    def test_factory_reproducible(self):
        a = RngFactory(7).child("x").integers(0, 10**9, 20)
        b = RngFactory(7).child("x").integers(0, 10**9, 20)
        assert np.array_equal(a, b)

    def test_same_name_advances(self):
        factory = RngFactory(7)
        a = factory.child("x").integers(0, 10**9, 20)
        b = factory.child("x").integers(0, 10**9, 20)
        assert not np.array_equal(a, b)

    def test_fork_independent(self):
        factory = RngFactory(7)
        forked = factory.fork("sub")
        a = factory.child("x").integers(0, 10**9, 10)
        b = forked.child("x").integers(0, 10**9, 10)
        assert not np.array_equal(a, b)
