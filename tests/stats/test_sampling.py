"""Tests for random-time draws and nearest-in-time selection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EmptyDataError
from repro.stats.sampling import (
    midpoints_of,
    nearest_time_sample,
    random_times,
    sorted_by_time,
)


class TestRandomTimes:
    def test_in_range(self):
        draws = random_times(10.0, 20.0, 1000, rng=1)
        assert draws.size == 1000
        assert draws.min() >= 10.0
        assert draws.max() < 20.0

    def test_roughly_uniform(self):
        draws = random_times(0.0, 1.0, 20000, rng=2)
        hist, _ = np.histogram(draws, bins=10, range=(0, 1))
        assert hist.min() > 1500  # each decile ~2000

    def test_zero_draws(self):
        assert random_times(0.0, 1.0, 0, rng=3).size == 0

    def test_rejects_empty_window(self):
        with pytest.raises(EmptyDataError):
            random_times(5.0, 5.0, 10)

    def test_rejects_negative_count(self):
        with pytest.raises(EmptyDataError):
            random_times(0.0, 1.0, -1)


class TestNearestTimeSample:
    def test_exact_hits(self):
        times = np.array([0.0, 10.0, 20.0])
        idx = nearest_time_sample(times, np.array([0.0, 10.0, 20.0]), rng=1)
        assert idx.tolist() == [0, 1, 2]

    def test_nearest_selection(self):
        times = np.array([0.0, 10.0, 20.0])
        idx = nearest_time_sample(times, np.array([2.0, 9.0, 16.0]), rng=1)
        assert idx.tolist() == [0, 1, 2]

    def test_outside_range_clamps(self):
        times = np.array([5.0, 10.0])
        idx = nearest_time_sample(times, np.array([-100.0, 100.0]), rng=1)
        assert idx.tolist() == [0, 1]

    def test_matches_bruteforce(self):
        rng = np.random.default_rng(5)
        times = np.sort(rng.uniform(0, 100, 50))
        # keep times distinct so the answer is unique
        times = np.unique(times)
        queries = rng.uniform(0, 100, 200)
        idx = nearest_time_sample(times, queries, rng=6)
        brute = np.argmin(np.abs(queries[:, None] - times[None, :]), axis=1)
        distances_fast = np.abs(queries - times[idx])
        distances_brute = np.abs(queries - times[brute])
        assert np.allclose(distances_fast, distances_brute)

    def test_midpoint_tie_is_random(self):
        times = np.array([0.0, 10.0])
        queries = np.full(2000, 5.0)
        idx = nearest_time_sample(times, queries, rng=7)
        share = idx.mean()
        assert 0.4 < share < 0.6

    def test_duplicate_timestamps_random_among_run(self):
        times = np.array([0.0, 5.0, 5.0, 5.0, 10.0])
        queries = np.full(3000, 5.2)
        idx = nearest_time_sample(times, queries, rng=8)
        counts = np.bincount(idx, minlength=5)
        assert counts[0] == 0 and counts[4] == 0
        assert all(c > 700 for c in counts[1:4])

    def test_requires_sorted(self):
        with pytest.raises(EmptyDataError):
            nearest_time_sample(np.array([3.0, 1.0]), np.array([2.0]))

    def test_requires_samples(self):
        with pytest.raises(EmptyDataError):
            nearest_time_sample(np.array([]), np.array([1.0]))

    def test_single_sample(self):
        idx = nearest_time_sample(np.array([42.0]), np.array([0.0, 100.0]), rng=9)
        assert idx.tolist() == [0, 0]

    def test_assume_sorted_matches_checked_path(self):
        """The fast path must agree with the checking path draw-for-draw —
        same RNG consumption, same indices — not just in distribution."""
        rng = np.random.default_rng(11)
        times = np.unique(np.sort(rng.uniform(0, 100, 60)))
        queries = rng.uniform(-10, 110, 500)
        mids = midpoints_of(times)
        checked = nearest_time_sample(times, queries, rng=13)
        fast = nearest_time_sample(
            times, queries, rng=13,
            assume_sorted=True, midpoints=mids, has_duplicates=False,
        )
        assert np.array_equal(checked, fast)

    def test_assume_sorted_skips_order_check(self):
        """assume_sorted is a caller-owned invariant: unsorted input is not
        detected (garbage in, garbage out) instead of raising."""
        nearest_time_sample(
            np.array([3.0, 1.0]), np.array([2.0]), rng=1,
            assume_sorted=True, has_duplicates=False,
        )

    def test_precomputed_midpoints_tie_break_still_random(self):
        times = np.array([0.0, 10.0])
        idx = nearest_time_sample(
            times, np.full(2000, 5.0), rng=7,
            assume_sorted=True, midpoints=midpoints_of(times),
            has_duplicates=False,
        )
        assert 0.4 < idx.mean() < 0.6


class TestMidpointsOf:
    def test_values(self):
        mids = midpoints_of(np.array([0.0, 10.0, 30.0]))
        assert mids.tolist() == [5.0, 20.0]

    @pytest.mark.parametrize("times", [np.array([]), np.array([42.0])])
    def test_degenerate_sizes_are_empty(self, times):
        assert midpoints_of(times).size == 0


class TestSortedByTime:
    def test_sorts_parallel_columns(self):
        times = np.array([3.0, 1.0, 2.0])
        values = np.array([30.0, 10.0, 20.0])
        t_sorted, v_sorted = sorted_by_time(times, values)
        assert t_sorted.tolist() == [1.0, 2.0, 3.0]
        assert v_sorted.tolist() == [10.0, 20.0, 30.0]

    def test_stable_on_ties(self):
        times = np.array([1.0, 1.0])
        tags = np.array(["a", "b"], dtype=object)
        _, sorted_tags = sorted_by_time(times, tags)
        assert sorted_tags.tolist() == ["a", "b"]


@given(
    st.lists(st.floats(min_value=0.0, max_value=1000.0), min_size=1, max_size=60),
    st.lists(st.floats(min_value=-100.0, max_value=1100.0), min_size=1, max_size=60),
)
@settings(max_examples=50, deadline=None)
def test_nearest_distance_optimal(sample_list, query_list):
    """Property: the selected sample is never farther than the true nearest."""
    times = np.sort(np.asarray(sample_list))
    queries = np.asarray(query_list)
    idx = nearest_time_sample(times, queries, rng=0)
    best = np.min(np.abs(queries[:, None] - times[None, :]), axis=1)
    chosen = np.abs(queries - times[idx])
    assert np.allclose(chosen, best, atol=1e-9)
