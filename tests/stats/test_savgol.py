"""Tests for the from-scratch Savitzky-Golay filter."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.stats.savgol import SavitzkyGolay, savgol_coefficients, savgol_smooth


class TestCoefficients:
    def test_sum_to_one(self):
        """Smoothing coefficients reproduce a constant exactly."""
        for window, degree in [(5, 2), (7, 3), (101, 3)]:
            coeffs = savgol_coefficients(window, degree)
            assert np.isclose(coeffs.sum(), 1.0)

    def test_symmetric(self):
        coeffs = savgol_coefficients(9, 2)
        assert np.allclose(coeffs, coeffs[::-1])

    def test_matches_scipy(self):
        scipy_signal = pytest.importorskip("scipy.signal")
        ours = savgol_coefficients(11, 3)
        theirs = scipy_signal.savgol_coeffs(11, 3)[::-1]
        assert np.allclose(ours, theirs)

    def test_rejects_even_window(self):
        with pytest.raises(ConfigError):
            savgol_coefficients(10, 2)

    def test_rejects_degree_ge_window(self):
        with pytest.raises(ConfigError):
            savgol_coefficients(5, 5)

    def test_first_derivative(self):
        coeffs = savgol_coefficients(7, 2, deriv=1)
        x = np.arange(7, dtype=float)
        # derivative of y = 3x at center should be 3
        assert np.isclose(np.dot(coeffs, 3.0 * x), 3.0)


class TestSmooth:
    def test_exact_on_polynomial(self):
        """SG with degree d reproduces any polynomial of degree <= d exactly."""
        x = np.arange(50, dtype=float)
        y = 2.0 + 3.0 * x - 0.5 * x**2 + 0.01 * x**3
        smoothed = savgol_smooth(y, window=11, degree=3)
        assert np.allclose(smoothed, y, atol=1e-6)

    def test_edges_handled(self):
        y = np.arange(20, dtype=float) ** 2
        smoothed = savgol_smooth(y, window=7, degree=2)
        assert np.allclose(smoothed, y, atol=1e-6)  # includes first/last points

    def test_matches_scipy_interior(self):
        scipy_signal = pytest.importorskip("scipy.signal")
        rng = np.random.default_rng(0)
        y = rng.normal(size=200)
        ours = savgol_smooth(y, window=21, degree=3)
        theirs = scipy_signal.savgol_filter(y, 21, 3)
        assert np.allclose(ours[10:-10], theirs[10:-10], atol=1e-9)

    def test_reduces_noise(self):
        rng = np.random.default_rng(1)
        y = np.sin(np.linspace(0, 3, 400)) + rng.normal(0, 0.3, 400)
        smoothed = savgol_smooth(y, window=31, degree=3)
        truth = np.sin(np.linspace(0, 3, 400))
        assert np.abs(smoothed - truth).mean() < np.abs(y - truth).mean()

    def test_nan_gap_filled_from_neighbours(self):
        y = np.arange(40, dtype=float)
        y[20] = np.nan
        smoothed = savgol_smooth(y, window=9, degree=2)
        assert np.isclose(smoothed[20], 20.0, atol=1e-6)

    def test_all_nan_window_stays_nan(self):
        y = np.full(30, np.nan)
        y[0] = 1.0
        smoothed = savgol_smooth(y, window=5, degree=2)
        assert np.isnan(smoothed[20])

    def test_short_input_degrades_gracefully(self):
        y = np.array([1.0, 2.0, 3.0])
        smoothed = savgol_smooth(y, window=101, degree=3)
        assert np.allclose(smoothed, y, atol=1e-8)

    def test_empty_input(self):
        assert savgol_smooth(np.array([]), 5, 2).size == 0

    def test_rejects_2d(self):
        with pytest.raises(ConfigError):
            savgol_smooth(np.ones((3, 3)), 3, 1)

    def test_callable_wrapper(self):
        smoother = SavitzkyGolay(window=5, degree=2)
        y = np.arange(10, dtype=float)
        assert np.allclose(smoother(y), y, atol=1e-8)

    def test_wrapper_validates(self):
        with pytest.raises(ConfigError):
            SavitzkyGolay(window=4, degree=2)


@given(
    coeffs=st.tuples(
        st.floats(min_value=-5, max_value=5),
        st.floats(min_value=-5, max_value=5),
        st.floats(min_value=-1, max_value=1),
        st.floats(min_value=-0.05, max_value=0.05),
    ),
    window=st.sampled_from([5, 9, 15, 21]),
)
@settings(max_examples=40, deadline=None)
def test_polynomial_exactness_property(coeffs, window):
    """Property: degree-3 SG is an identity on cubics, any window size."""
    a, b, c, d = coeffs
    x = np.linspace(0, 3, 60)
    y = a + b * x + c * x**2 + d * x**3
    smoothed = savgol_smooth(y, window=window, degree=3)
    assert np.allclose(smoothed, y, atol=1e-6 * max(1.0, np.abs(y).max()))
