"""Tests for terminal plots, tables and exports."""

import csv
import json

import numpy as np
import pytest

from repro.errors import EmptyDataError
from repro.viz import (
    bar_chart,
    format_table,
    line_plot,
    save_series_csv,
    save_series_json,
)


class TestLinePlot:
    def test_renders_markers_and_legend(self):
        x = np.linspace(0, 10, 50)
        out = line_plot({"up": (x, x), "down": (x, -x)}, width=40, height=10)
        assert "o up" in out
        assert "x down" in out
        assert "o" in out.splitlines()[0] or "o" in out

    def test_handles_nan(self):
        x = np.arange(10.0)
        y = x.copy()
        y[3] = np.nan
        out = line_plot({"s": (x, y)})
        assert isinstance(out, str)

    def test_empty_raises(self):
        with pytest.raises(EmptyDataError):
            line_plot({"s": (np.array([]), np.array([]))})

    def test_constant_series(self):
        x = np.arange(5.0)
        out = line_plot({"s": (x, np.ones(5))})
        assert "s" in out

    def test_y_range_override(self):
        x = np.arange(5.0)
        out = line_plot({"s": (x, x)}, y_range=(0.0, 100.0), height=5)
        assert out.splitlines()[0].strip().startswith("100")


class TestBarChart:
    def test_bars_scale(self):
        out = bar_chart({"a": 1.0, "b": 0.5})
        lines = out.splitlines()
        assert lines[0].count("#") > lines[1].count("#")

    def test_empty_raises(self):
        with pytest.raises(EmptyDataError):
            bar_chart({})


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["name", "value"], [["a", 1.5], ["bbbb", 22.125]])
        lines = out.splitlines()
        assert all(len(line) == len(lines[0]) for line in lines)
        assert "22.125" in out

    def test_none_renders_dash(self):
        out = format_table(["x"], [[None]])
        assert "-" in out

    def test_precision(self):
        out = format_table(["x"], [[1.23456]], precision=2)
        assert "1.23" in out
        assert "1.235" not in out


class TestExport:
    def test_csv_round_trip(self, tmp_path):
        path = tmp_path / "series.csv"
        n = save_series_csv({"a": np.array([1.0, 2.0]),
                             "b": np.array([3.0, np.nan])}, path)
        assert n == 2
        with open(path) as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["a", "b"]
        assert rows[2][1] == ""  # NaN -> empty cell

    def test_csv_length_mismatch(self, tmp_path):
        with pytest.raises(EmptyDataError):
            save_series_csv({"a": np.ones(2), "b": np.ones(3)},
                            tmp_path / "x.csv")

    def test_json_nan_null(self, tmp_path):
        path = tmp_path / "series.json"
        save_series_json({"a": np.array([1.0, np.nan])}, path)
        data = json.loads(path.read_text())
        assert data["a"] == [1.0, None]

    def test_json_handles_numpy_ints(self, tmp_path):
        path = tmp_path / "series.json"
        save_series_json({"a": np.array([1, 2], dtype=np.int64)}, path)
        assert json.loads(path.read_text())["a"] == [1, 2]

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(EmptyDataError):
            save_series_json({}, tmp_path / "x.json")
