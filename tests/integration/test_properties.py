"""Cross-module property-based tests (hypothesis) on pipeline invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.alpha import SlottedCounts, alpha_from_counts
from repro.core.streaming import merge_slotted_counts
from repro.core.unbiased import voronoi_weights
from repro.stats.histogram import HistogramBins


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=200))
@settings(max_examples=60, deadline=None)
def test_voronoi_weights_partition_window(times):
    """Property: Voronoi cells partition the window exactly."""
    times = np.sort(np.asarray(times))
    lo, hi = float(times[0]) - 1.0, float(times[-1]) + 1.0
    weights = voronoi_weights(times, time_range=(lo, hi))
    assert np.all(weights >= 0)
    assert np.isclose(weights.sum(), hi - lo)


@given(
    counts_a=st.lists(st.integers(min_value=0, max_value=50),
                      min_size=8, max_size=8),
    counts_b=st.lists(st.integers(min_value=0, max_value=50),
                      min_size=8, max_size=8),
)
@settings(max_examples=50, deadline=None)
def test_merge_counts_additive_and_commutative(counts_a, counts_b):
    """Property: merged biased counts are the sum, in any order."""
    bins = HistogramBins(0.0, 80.0, 10.0)
    rng = np.random.default_rng(0)

    def make(raw):
        c = np.asarray(raw, dtype=float).reshape(2, 4)
        padded = np.zeros((2, 8))
        padded[:, :4] = c
        f = rng.dirichlet(np.ones(8), size=2)
        return SlottedCounts(
            scheme="hour-of-day",
            slot_ids=np.array([3, 15]),
            biased_counts=padded,
            time_fractions=f,
            bins=bins,
            slot_seconds=np.array([3600.0, 3600.0]),
        )

    a, b = make(counts_a), make(counts_b)
    ab = merge_slotted_counts([a, b])
    ba = merge_slotted_counts([b, a])
    assert np.allclose(ab.biased_counts, a.biased_counts + b.biased_counts)
    assert np.allclose(ab.biased_counts, ba.biased_counts)
    assert np.allclose(ab.time_fractions, ba.time_fractions)


@given(
    scale=st.floats(min_value=0.1, max_value=50.0),
    night_activity=st.floats(min_value=0.01, max_value=1.0),
)
@settings(max_examples=40, deadline=None)
def test_alpha_reference_is_always_one_and_scaling(scale, night_activity):
    """Property: α of the reference slot is 1; other slots scale with
    their activity regardless of overall count magnitude."""
    bins = HistogramBins(0.0, 40.0, 10.0)
    base = np.array([40.0, 30.0, 20.0, 10.0])
    counts = SlottedCounts(
        scheme="hour-of-day",
        slot_ids=np.array([3, 13]),
        biased_counts=np.stack([base * night_activity * scale, base * scale]),
        time_fractions=np.stack([base / base.sum()] * 2),
        bins=bins,
    )
    alpha = alpha_from_counts(counts, reference_slot=13, min_bin_count=0.0)
    ref_row = int(np.flatnonzero(counts.slot_ids == 13)[0])
    night_row = 1 - ref_row
    assert alpha.alpha_by_slot[ref_row] == 1.0
    assert np.isclose(alpha.alpha_by_slot[night_row], night_activity, rtol=1e-6)


@given(
    shift=st.floats(min_value=-5.0, max_value=5.0),
)
@settings(max_examples=30, deadline=None)
def test_nlp_invariant_to_uniform_count_scaling(shift):
    """Property: multiplying all biased counts by a constant leaves the
    normalized curve unchanged (it is a *normalized* preference)."""
    from repro.core.preference import PreferenceComputer
    from repro.stats.histogram import Histogram1D

    bins = HistogramBins(0.0, 600.0, 100.0)
    factor = float(np.exp(shift))
    base = np.array([1200.0, 1100, 1000, 900, 800, 700])
    computer = PreferenceComputer(smoothing_window=3, smoothing_degree=1,
                                  reference_ms=250.0, min_unbiased_count=10)

    def curve(scaled):
        biased = Histogram1D(bins)
        biased.add_counts(base * scaled)
        unbiased = Histogram1D(bins)
        unbiased.add_counts(np.full(6, 1000.0))
        return computer.compute(biased, unbiased).nlp

    a, b = curve(1.0), curve(factor)
    valid = ~np.isnan(a)
    assert np.allclose(a[valid], b[valid], atol=1e-9)
