"""Ground-truth recovery: the headline integration tests.

The synthetic workload is generated with a known preference curve; the
pipeline must recover it. Seeds are fixed and tolerances account for the
known attenuation sources (per-user multipliers, request jitter, SG window
bias) discussed in DESIGN.md.
"""

import numpy as np
import pytest

from repro.core import AutoSens, AutoSensConfig, compare_to_truth
from repro.types import ActionType, UserClass
from repro.workload import flat_preference_scenario, owa_scenario
from repro.workload.preference import paper_curve


@pytest.fixture(scope="module")
def recovery_result():
    """A slightly larger workload for accurate recovery checks."""
    scenario = owa_scenario(seed=11, duration_days=7.0, n_users=400,
                            candidates_per_user_day=150.0)
    return scenario.generate()


@pytest.fixture(scope="module")
def recovery_engine():
    return AutoSens(AutoSensConfig(seed=3))


class TestSelectMailRecovery:
    def test_anchor_values(self, recovery_result, recovery_engine):
        curve = recovery_engine.preference_curve(
            recovery_result.logs, action=ActionType.SELECT_MAIL,
            user_class=UserClass.BUSINESS,
        )
        truth = paper_curve(ActionType.SELECT_MAIL, UserClass.BUSINESS)
        report = compare_to_truth(curve, lambda lat: truth.normalized(lat),
                                  anchor_latencies=(500.0, 1000.0))
        assert report.max_abs_error < 0.08, [
            (a.latency_ms, a.measured, a.expected) for a in report.anchors
        ]

    def test_tail_anchor_loose(self, recovery_result, recovery_engine):
        curve = recovery_engine.preference_curve(
            recovery_result.logs, action=ActionType.SELECT_MAIL,
            user_class=UserClass.BUSINESS,
        )
        truth = paper_curve(ActionType.SELECT_MAIL, UserClass.BUSINESS)
        expected = float(truth.normalized(np.array([1500.0]))[0])
        measured = float(curve.at(1500.0))
        assert abs(measured - expected) < 0.15

    def test_monotone_decreasing_mid_range(self, recovery_result, recovery_engine):
        curve = recovery_engine.preference_curve(
            recovery_result.logs, action=ActionType.SELECT_MAIL,
            user_class=UserClass.BUSINESS,
        )
        probes = np.array([350.0, 500.0, 700.0, 900.0, 1100.0])
        values = np.array([float(curve.at(p)) for p in probes])
        assert np.all(np.diff(values) < 0.02)  # allow tiny noise


class TestCrossSliceFindings:
    def test_action_ordering(self, recovery_result, recovery_engine):
        """SelectMail steepest, ComposeSend flattest (paper Fig. 4).

        Pooled across user classes: the ground-truth ordering is the same
        in both, and the rare ComposeSend slice is too sparse per-class
        for a single-anchor comparison to be stable across seeds.
        """
        curves = recovery_engine.curves_by_action(
            recovery_result.logs, user_class=None)
        at_1000 = {k: float(v.at(1000.0)) for k, v in curves.items()}
        assert at_1000["SelectMail"] < at_1000["Search"]
        assert at_1000["SwitchFolder"] < at_1000["ComposeSend"]
        assert at_1000["Search"] < at_1000["ComposeSend"]

    def test_class_ordering(self, recovery_result, recovery_engine):
        """Business more sensitive than consumer (paper Fig. 5)."""
        curves = recovery_engine.curves_by_user_class(
            recovery_result.logs, action=ActionType.SELECT_MAIL)
        assert (float(curves["business"].at(1000.0))
                < float(curves["consumer"].at(1000.0)))

    def test_compose_send_flat(self, recovery_result, recovery_engine):
        curve = recovery_engine.preference_curve(
            recovery_result.logs, action=ActionType.COMPOSE_SEND,
            user_class=UserClass.BUSINESS)
        # The truth is 0.98 but the estimate on this ~16k-action slice
        # scatters around 0.88 (±0.04 across seeds, legacy and current
        # samplers alike) — SG smoothing bias, not draw noise. The bound
        # checks "clearly flat", i.e. well above SelectMail's ~0.7 here;
        # strict flatness ordering lives in test_action_ordering.
        assert float(curve.at(800.0)) > 0.8


class TestNullControl:
    def test_flat_truth_gives_flat_curve(self):
        """Negative control: latency-indifferent users must yield NLP ~ 1.

        If this fails, the pipeline manufactures preference out of nothing
        (e.g. a residual confounder) — the most dangerous failure mode.
        """
        result = flat_preference_scenario(
            seed=17, duration_days=6.0, n_users=350,
            candidates_per_user_day=120.0).generate()
        engine = AutoSens(AutoSensConfig(seed=2))
        curve = engine.preference_curve(result.logs, action="SelectMail")
        probes = [400.0, 600.0, 800.0, 1000.0]
        values = [float(curve.at(p)) for p in probes]
        assert all(abs(v - 1.0) < 0.12 for v in values), values

    def test_flat_truth_uncorrected_is_confounded(self):
        """Without alpha correction the same null data looks latency-loving
        (the Table 1 inversion) — proof the correction is load-bearing."""
        result = flat_preference_scenario(
            seed=17, duration_days=6.0, n_users=350,
            candidates_per_user_day=120.0).generate()
        engine = AutoSens(AutoSensConfig(seed=2, time_correction=False))
        curve = engine.preference_curve(result.logs, action="SelectMail")
        # low-latency bins co-occur with sleepy hours -> NLP < 1 there
        assert float(curve.at(150.0)) < 0.9


class TestResponseModeAblation:
    def test_level_mode_recovers_shape(self):
        """Preference on the *predictable level* still yields a declining
        curve (slightly smeared by request jitter)."""
        scenario = owa_scenario(seed=19, duration_days=6.0, n_users=350,
                                candidates_per_user_day=120.0,
                                response_mode="level")
        result = scenario.generate()
        engine = AutoSens(AutoSensConfig(seed=4))
        curve = engine.preference_curve(result.logs, action="SelectMail",
                                        user_class="business")
        assert float(curve.at(1000.0)) < float(curve.at(400.0)) - 0.1
