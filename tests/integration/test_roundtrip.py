"""End-to-end file round-trips: generate -> write -> read -> analyze."""

import numpy as np
import pytest

from repro.core import AutoSens, AutoSensConfig
from repro.telemetry import read_csv, read_jsonl, write_csv, write_jsonl


class TestFileRoundTrip:
    def test_jsonl_analysis_matches_in_memory(self, owa_result, tmp_path):
        logs = owa_result.logs
        path = tmp_path / "logs.jsonl"
        write_jsonl(logs.iter_records(), path)
        reloaded = read_jsonl(path)

        engine_a = AutoSens(AutoSensConfig(seed=5))
        engine_b = AutoSens(AutoSensConfig(seed=5))
        curve_a = engine_a.preference_curve(logs, action="SelectMail")
        curve_b = engine_b.preference_curve(reloaded, action="SelectMail")
        assert np.allclose(curve_a.nlp, curve_b.nlp, equal_nan=True)

    def test_csv_preserves_analysis_columns(self, owa_result, tmp_path):
        logs = owa_result.logs
        path = tmp_path / "logs.csv"
        write_csv(logs.iter_records(), path)
        reloaded = read_csv(path)
        assert len(reloaded) == len(logs)
        assert np.allclose(reloaded.latencies_ms, logs.latencies_ms)
        assert np.array_equal(reloaded.success, logs.success)

    def test_curve_json_round_trip(self, owa_result, tmp_path, engine):
        from repro.core.result import PreferenceResult

        curve = engine.preference_curve(owa_result.logs, action="Search")
        path = tmp_path / "curve.json"
        curve.save_json(path)
        clone = PreferenceResult.load_json(path)
        assert np.allclose(clone.nlp, curve.nlp, equal_nan=True)
        assert clone.slice_description == curve.slice_description
