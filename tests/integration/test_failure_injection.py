"""Failure injection: pathological telemetry must fail loudly, not wrongly.

Production logs contain degenerate slices — constant latency, single
users, clock anomalies, error storms. The pipeline should either produce a
sane answer or raise a library error; silently wrong curves are the
failure mode these tests guard against.
"""

import numpy as np
import pytest

from repro.errors import (
    EmptyDataError,
    InsufficientDataError,
    ReproError,
)
from repro.core import AutoSens, AutoSensConfig
from repro.core.locality import density_latency_series, locality_report
from repro.core.quartiles import assign_quartiles
from repro.telemetry import ActionRecord, LogStore


def _logs(n, latency_fn, time_fn=lambda i: float(i * 30), success=True,
          user_fn=lambda i: f"u{i % 40}"):
    return LogStore.from_records([
        ActionRecord(time=time_fn(i), action="A", latency_ms=latency_fn(i),
                     user_id=user_fn(i), user_class="business",
                     success=success)
        for i in range(n)
    ])


@pytest.fixture()
def engine():
    return AutoSens(AutoSensConfig(seed=7, min_actions=100))


class TestDegenerateLatency:
    def test_constant_latency_flat_curve(self, engine):
        """All mass in one bin: the curve is defined only there, value 1."""
        logs = _logs(3000, lambda i: 250.0)
        curve = engine.preference_curve(logs)
        lo, hi = curve.valid_range()
        assert hi - lo <= 20.0  # one or two bins wide
        assert float(curve.at(0.5 * (lo + hi))) == pytest.approx(1.0, abs=0.01)

    def test_two_point_latency(self, engine):
        rng = np.random.default_rng(0)
        logs = _logs(4000, lambda i: 200.0 if rng.random() < 0.5 else 800.0)
        curve = engine.preference_curve(logs)
        lo, hi = curve.valid_range()
        assert np.isfinite(float(curve.at(lo)))
        assert np.isfinite(float(curve.at(hi)))

    def test_all_out_of_grid(self, engine):
        """Latencies beyond the grid leave nothing to analyze."""
        logs = _logs(2000, lambda i: 50_000.0)
        with pytest.raises(ReproError):
            engine.preference_curve(logs)

    def test_extreme_outliers_do_not_crash(self, engine):
        rng = np.random.default_rng(1)
        logs = _logs(3000, lambda i: float(rng.lognormal(5.7, 0.3))
                     if i % 100 else 2_999.0)
        curve = engine.preference_curve(logs)
        assert curve.n_actions == 3000


class TestDegenerateTiming:
    def test_all_actions_at_one_instant(self, engine):
        logs = _logs(2000, lambda i: 300.0 + (i % 7) * 10, time_fn=lambda i: 1000.0)
        # One time slot, zero duration: must not crash or divide by zero.
        curve = engine.preference_curve(logs)
        assert float(curve.at(*curve.valid_range()[:1])) > 0

    def test_unsorted_input(self, engine):
        rng = np.random.default_rng(2)
        times = rng.uniform(0, 5 * 86400.0, 5000)
        logs = LogStore.from_arrays(
            times=times,
            latencies_ms=rng.lognormal(5.7, 0.4, 5000),
            actions=["A"] * 5000,
        )
        curve = engine.preference_curve(logs)
        assert curve.n_actions == 5000

    def test_duplicate_timestamps_heavy(self, engine):
        """80 % of rows share timestamps (batched logging)."""
        rng = np.random.default_rng(3)
        base = np.repeat(np.arange(0, 86400.0, 60.0), 4)
        times = np.concatenate([base, rng.uniform(0, 86400.0, base.size // 4)])
        logs = LogStore.from_arrays(
            times=np.sort(times),
            latencies_ms=rng.lognormal(5.7, 0.4, times.size),
            actions=["A"] * times.size,
        )
        curve = engine.preference_curve(logs)
        assert curve.n_actions == times.size


class TestDegeneratePopulations:
    def test_single_user(self, engine):
        rng = np.random.default_rng(4)
        logs = _logs(3000, lambda i: float(rng.lognormal(5.7, 0.4)),
                     user_fn=lambda i: "only-user")
        curve = engine.preference_curve(logs)  # analysis itself works
        with pytest.raises(InsufficientDataError):
            assign_quartiles(logs)  # but quartiles need >= 4 users

    def test_error_storm(self, engine):
        """All actions failed: the success filter leaves nothing."""
        logs = _logs(2000, lambda i: 300.0, success=False)
        with pytest.raises(InsufficientDataError):
            engine.preference_curve(logs)

    def test_empty_logs_everywhere(self):
        empty = LogStore.from_records([])
        with pytest.raises(EmptyDataError):
            locality_report(empty)
        with pytest.raises(EmptyDataError):
            density_latency_series(empty)

    def test_tiny_slice_rejected(self, engine):
        logs = _logs(50, lambda i: 300.0)
        with pytest.raises(InsufficientDataError):
            engine.preference_curve(logs)


class TestNumericalEdges:
    def test_zero_latency_rows(self, engine):
        logs = _logs(2000, lambda i: 0.0 if i % 5 == 0 else 300.0)
        curve = engine.preference_curve(logs)
        assert curve.biased_counts[0] > 0  # the zero bin is real data

    def test_voronoi_on_degenerate_times(self):
        from repro.core.unbiased import voronoi_weights

        weights = voronoi_weights(np.zeros(5))
        assert np.isclose(weights.sum(), 1.0)  # window padded to length 1
        assert np.allclose(weights, 0.2)
