"""CLI observability flags: artifact emission, byte-identity, obs summary."""

import json

import pytest

from repro.cli.main import main


def _run(tmp_path, tag, seed="11"):
    """One instrumented smoke experiment; returns the artifact paths."""
    trace = tmp_path / f"{tag}-trace.json"
    metrics = tmp_path / f"{tag}-metrics.prom"
    manifest = tmp_path / f"{tag}-manifest.json"
    status = main([
        "experiment", "bottleneck", "--scale", "small", "--seed", seed,
        "--no-plots",
        "--trace-out", str(trace),
        "--metrics-out", str(metrics),
        "--manifest-out", str(manifest),
        "--deterministic-trace",
    ])
    assert status == 0
    return trace, metrics, manifest


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    return _run(tmp_path_factory.mktemp("obs-cli"), "run")


class TestArtifacts:
    def test_trace_is_a_chrome_trace(self, artifacts):
        trace, _, _ = artifacts
        payload = json.loads(trace.read_text())
        assert payload["otherData"]["schema"] == 1
        events = payload["traceEvents"]
        assert events and all(e["ph"] == "X" for e in events)
        assert {"experiment", "preference_curve"} <= {e["name"] for e in events}

    def test_metrics_are_prometheus_text(self, artifacts):
        _, metrics, _ = artifacts
        text = metrics.read_text()
        assert "# TYPE autosens_slice_cache_total counter" in text

    def test_manifest_names_the_experiment(self, artifacts):
        _, _, manifest = artifacts
        data = json.loads(manifest.read_text())
        assert data["experiment_id"] == "bottleneck"
        assert data["seed"] == 11
        assert data["deterministic"] is True
        assert "created_at" not in data

    def test_obs_summary_renders_the_manifest(self, artifacts, capsys):
        _, _, manifest = artifacts
        assert main(["obs", "summary", str(manifest)]) == 0
        out = capsys.readouterr().out
        assert "bottleneck" in out
        assert "run id" in out

    def test_obs_summary_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{")
        assert main(["obs", "summary", str(bad)]) != 0


class TestByteIdentity:
    def test_two_deterministic_runs_emit_identical_artifacts(self, tmp_path):
        first = _run(tmp_path, "a")
        second = _run(tmp_path, "b")
        for one, two in zip(first, second):
            assert one.read_bytes() == two.read_bytes(), one.name


class TestJsonlTrace:
    def test_jsonl_suffix_selects_span_jsonl(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        assert main([
            "experiment", "table1", "--no-plots",
            "--trace-out", str(trace), "--deterministic-trace",
        ]) == 0
        lines = trace.read_text().splitlines()
        assert lines
        for line in lines:
            record = json.loads(line)
            assert record["schema"] == 1
            assert "dur_us" in record
