"""CLI observability flags: artifact emission, byte-identity, obs summary."""

import json

import pytest

from repro.cli.main import main


def _run(tmp_path, tag, seed="11", extra_flags=()):
    """One instrumented smoke experiment; returns the artifact paths."""
    trace = tmp_path / f"{tag}-trace.json"
    metrics = tmp_path / f"{tag}-metrics.prom"
    manifest = tmp_path / f"{tag}-manifest.json"
    status = main([
        "experiment", "bottleneck", "--scale", "small", "--seed", seed,
        "--no-plots",
        "--trace-out", str(trace),
        "--metrics-out", str(metrics),
        "--manifest-out", str(manifest),
        "--deterministic-trace",
        *extra_flags,
    ])
    assert status == 0
    return trace, metrics, manifest


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    return _run(tmp_path_factory.mktemp("obs-cli"), "run")


class TestArtifacts:
    def test_trace_is_a_chrome_trace(self, artifacts):
        trace, _, _ = artifacts
        payload = json.loads(trace.read_text())
        assert payload["otherData"]["schema"] == 1
        events = payload["traceEvents"]
        assert events and all(e["ph"] == "X" for e in events)
        assert {"experiment", "preference_curve"} <= {e["name"] for e in events}

    def test_metrics_are_prometheus_text(self, artifacts):
        _, metrics, _ = artifacts
        text = metrics.read_text()
        assert "# TYPE autosens_slice_cache_total counter" in text

    def test_manifest_names_the_experiment(self, artifacts):
        _, _, manifest = artifacts
        data = json.loads(manifest.read_text())
        assert data["experiment_id"] == "bottleneck"
        assert data["seed"] == 11
        assert data["deterministic"] is True
        assert "created_at" not in data

    def test_obs_summary_renders_the_manifest(self, artifacts, capsys):
        _, _, manifest = artifacts
        assert main(["obs", "summary", str(manifest)]) == 0
        out = capsys.readouterr().out
        assert "bottleneck" in out
        assert "run id" in out

    def test_obs_summary_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{")
        assert main(["obs", "summary", str(bad)]) != 0


class TestByteIdentity:
    def test_two_deterministic_runs_emit_identical_artifacts(self, tmp_path):
        first = _run(tmp_path, "a")
        second = _run(tmp_path, "b")
        for one, two in zip(first, second):
            assert one.read_bytes() == two.read_bytes(), one.name


class TestHealthAndProfileFlags:
    def test_health_out_writes_an_ok_report(self, tmp_path):
        health = tmp_path / "health.json"
        _run(tmp_path, "h", extra_flags=("--health-out", str(health)))
        payload = json.loads(health.read_text())
        assert payload["verdict"] == "ok"
        assert payload["findings"]

    def test_manifest_embeds_the_health_report(self, artifacts):
        _, _, manifest = artifacts
        data = json.loads(manifest.read_text())
        assert data["health"]["verdict"] == "ok"
        assert data["span_timings"]

    def test_profile_out_writes_span_attribution(self, tmp_path):
        profile = tmp_path / "profile.json"
        _run(tmp_path, "p", extra_flags=("--profile-out", str(profile)))
        payload = json.loads(profile.read_text())
        assert payload["schema"] == 1
        assert "experiment" in payload["spans"]
        assert payload["top"]

    def test_profiling_leaves_other_artifacts_byte_identical(self, tmp_path):
        """The identity guarantee, end to end through the CLI: a profiled
        run's trace/metrics/manifest match an unprofiled run byte for byte."""
        plain = _run(tmp_path, "plain")
        profiled = _run(
            tmp_path, "profiled",
            extra_flags=("--profile-out", str(tmp_path / "prof.json")))
        for one, two in zip(plain, profiled):
            assert one.read_bytes() == two.read_bytes(), one.name


class TestDoctor:
    def test_doctor_on_a_clean_run_exits_ok(self, artifacts, capsys):
        _, _, manifest = artifacts
        assert main(["doctor", str(manifest)]) == 0
        out = capsys.readouterr().out
        assert "verdict: ok" in out

    def test_doctor_accepts_a_run_directory(self, tmp_path, capsys):
        _run(tmp_path, "run", extra_flags=(
            "--health-out", str(tmp_path / "run-health.json")))
        (tmp_path / "run-manifest.json").rename(tmp_path / "manifest.json")
        assert main(["doctor", str(tmp_path)]) == 0
        assert "verdict: ok" in capsys.readouterr().out

    def test_doctor_strict_flags_warnings(self, tmp_path, capsys):
        from repro.obs.health import HealthReport, write_health_report

        report = HealthReport([{
            "probe": "p", "stage": "runtime", "severity": "warn",
            "message": "synthetic warning",
        }])
        path = write_health_report(report, tmp_path / "health.json")
        assert main(["doctor", str(path)]) == 0  # warnings are advisory
        assert main(["doctor", str(path), "--strict"]) == 1
        out = capsys.readouterr().out
        assert "synthetic warning" in out

    def test_doctor_fail_verdict_exits_nonzero(self, tmp_path):
        from repro.obs.health import HealthReport, write_health_report

        report = HealthReport([{
            "probe": "p", "stage": "preference", "severity": "fail",
            "message": "no support",
        }])
        path = write_health_report(report, tmp_path / "health.json")
        assert main(["doctor", str(path)]) == 1

    def test_doctor_on_a_manifest_without_health_is_a_schema_error(
            self, tmp_path):
        import repro.obs as obs

        manifest = obs.build_manifest(
            experiment_id="x", seed=0, deterministic=True)
        path = obs.write_manifest(manifest, tmp_path / "manifest.json")
        assert main(["doctor", str(path)]) == 3


class TestObsDiffCommand:
    def test_self_diff_exits_zero_and_reports_unchanged(
            self, artifacts, capsys):
        _, _, manifest = artifacts
        assert main(["obs", "diff", str(manifest), str(manifest)]) == 0
        out = capsys.readouterr().out
        assert "regressed=0" in out

    def test_diff_out_writes_the_report(self, artifacts, tmp_path):
        _, _, manifest = artifacts
        out_path = tmp_path / "diff.json"
        assert main(["obs", "diff", str(manifest), str(manifest),
                     "--out", str(out_path)]) == 0
        payload = json.loads(out_path.read_text())
        assert payload["summary"]["regressed"] == 0

    def test_regression_exits_nonzero(self, artifacts, tmp_path, capsys):
        _, _, manifest = artifacts
        data = json.loads(manifest.read_text())
        data["degradations"] = [{"kind": "starved_slice"}]
        worse = tmp_path / "worse.json"
        worse.write_text(json.dumps(data))
        assert main(["obs", "diff", str(manifest), str(worse)]) == 1
        assert "regressed" in capsys.readouterr().out

    def test_kind_mismatch_is_a_schema_error(self, artifacts, tmp_path):
        _, _, manifest = artifacts
        health = tmp_path / "health.json"
        health.write_text(json.dumps(
            {"schema": 1, "verdict": "ok", "findings": [],
             "counts": {"ok": 0, "warn": 0, "fail": 0}, "stages": {}}))
        assert main(["obs", "diff", str(manifest), str(health)]) == 3


class TestJsonlTrace:
    def test_jsonl_suffix_selects_span_jsonl(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        assert main([
            "experiment", "table1", "--no-plots",
            "--trace-out", str(trace), "--deterministic-trace",
        ]) == 0
        lines = trace.read_text().splitlines()
        assert lines
        for line in lines:
            record = json.loads(line)
            assert record["schema"] == 1
            assert "dur_us" in record


class TestServeObs:
    def test_served_run_artifacts_are_byte_identical(self, artifacts, tmp_path):
        base_trace, base_metrics, base_manifest = artifacts
        trace, metrics, manifest = _run(
            tmp_path, "served",
            extra_flags=("--serve-obs", "127.0.0.1:0"))
        assert trace.read_bytes() == base_trace.read_bytes()
        assert metrics.read_bytes() == base_metrics.read_bytes()
        assert manifest.read_bytes() == base_manifest.read_bytes()

    def test_bad_address_is_a_config_error(self, tmp_path, capsys):
        status = main([
            "experiment", "bottleneck", "--scale", "small", "--seed", "11",
            "--no-plots", "--serve-obs", "not-a-port",
        ])
        assert status == 2
        assert "serve-obs" in capsys.readouterr().err


class TestRunRegistryCli:
    def _record(self, runs_dir, seed="11"):
        status = main([
            "experiment", "bottleneck", "--scale", "small", "--seed", seed,
            "--no-plots", "--deterministic-trace",
            "--serve-obs", "127.0.0.1:0",
            "--runs-dir", str(runs_dir),
        ])
        assert status == 0

    def test_recorded_runs_ls_show_and_trend(self, tmp_path, capsys):
        runs_dir = tmp_path / "runs"
        self._record(runs_dir)
        self._record(runs_dir)
        capsys.readouterr()

        assert main(["runs", "ls", "--runs-dir", str(runs_dir)]) == 0
        table = capsys.readouterr().out
        assert "0001-experiment-11" in table and "0002-experiment-11" in table

        assert main(["runs", "show", "1", "--runs-dir", str(runs_dir)]) == 0
        shown = capsys.readouterr().out
        assert "experiment:11" in shown and "health verdict" in shown

        # Two identical deterministic runs: every tracked dimension unchanged.
        assert main(["runs", "trend", "--runs-dir", str(runs_dir)]) == 0
        trend = capsys.readouterr().out
        assert "regressed=0" in trend and "ok" in trend

        assert main(["runs", "diff", "1", "2",
                     "--runs-dir", str(runs_dir)]) == 0

    def test_recorded_dir_holds_the_telemetry_artifacts(self, tmp_path):
        runs_dir = tmp_path / "runs"
        self._record(runs_dir)
        run_dir = runs_dir / "0001-experiment-11"
        assert (run_dir / "manifest.json").is_file()
        assert (run_dir / "metrics.prom").is_file()
        progress = json.loads((run_dir / "progress.json").read_text())
        assert progress["state"] == "done"
        events = (run_dir / "events.ndjson").read_text().splitlines()
        assert json.loads(events[0])["type"] == "run"
        assert json.loads(events[-1])["phase"] == "done"

    def test_top_renders_a_recorded_run(self, tmp_path, capsys):
        runs_dir = tmp_path / "runs"
        self._record(runs_dir)
        capsys.readouterr()
        assert main(["top", str(runs_dir / "0001-experiment-11"),
                     "--once"]) == 0
        frame = capsys.readouterr().out
        assert "autosens top" in frame and "done" in frame

    def test_unknown_selector_is_a_config_error(self, tmp_path, capsys):
        runs_dir = tmp_path / "runs"
        self._record(runs_dir)
        capsys.readouterr()
        assert main(["runs", "show", "nope",
                     "--runs-dir", str(runs_dir)]) == 2


class TestObsSummaryFormat:
    def test_json_format_emits_field_value_pairs(self, artifacts, capsys):
        _, _, manifest = artifacts
        assert main(["obs", "summary", str(manifest),
                     "--format", "json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        fields = dict(rows)
        assert fields["experiment"] == "bottleneck"
        assert fields["health verdict"] == "ok"

    def test_table_stays_the_default(self, artifacts, capsys):
        _, _, manifest = artifacts
        assert main(["obs", "summary", str(manifest)]) == 0
        assert "| " in capsys.readouterr().out
