"""The run registry: append-only index, lookup, and trend classification."""

import json
import multiprocessing
import sys

import repro.obs as obs
from repro.obs.registry import (
    REGISTRY_SCHEMA,
    RunRegistry,
    render_runs_table,
    render_trend,
    trend_exit_code,
)


def _record_run(registry, run_id="exp:11", verdict="ok", degradations=(),
                **index_fields):
    """Write a manifest-bearing run dir and its index line."""
    run_dir = registry.new_run_dir(run_id)
    manifest = obs.build_manifest(
        experiment_id="experiment",
        seed=11,
        config_fingerprint=run_id,
        degradations=list(degradations),
        deterministic=True,
        extra={"health": {"schema": 1, "verdict": verdict, "findings": [],
                          "counts": {"ok": 0, "warn": 0, "fail": 0},
                          "stages": {}}},
    )
    obs.write_manifest(manifest, run_dir / "manifest.json")
    return registry.record(
        run_dir, run_id=run_id, command="experiment", seed=11,
        deterministic=True, verdict=verdict, wall_s=1.0, **index_fields)


class TestIndex:
    def test_record_appends_schema_stamped_lines(self, tmp_path):
        registry = RunRegistry(tmp_path / "runs")
        entry = _record_run(registry)
        assert entry["schema"] == REGISTRY_SCHEMA
        assert entry["seq"] == 1
        assert entry["dir"] == "0001-exp-11"  # run id slugged for the fs
        lines = (registry.index_path.read_text().strip().splitlines())
        assert len(lines) == 1
        assert json.loads(lines[0]) == entry

    def test_sequences_advance_and_survive_restart(self, tmp_path):
        registry = RunRegistry(tmp_path / "runs")
        _record_run(registry)
        _record_run(RunRegistry(tmp_path / "runs"))  # a later process
        entries = registry.entries()
        assert [e["seq"] for e in entries] == [1, 2]

    def test_torn_and_alien_lines_are_skipped(self, tmp_path):
        registry = RunRegistry(tmp_path / "runs")
        _record_run(registry)
        with open(registry.index_path, "a", encoding="utf-8") as fh:
            fh.write("[1, 2]\n")          # alien but valid JSON
            fh.write('{"seq": 9, "dir"')  # torn mid-append
        assert [e["seq"] for e in registry.entries()] == [1]
        # The next recording still lands after the noise.
        _record_run(registry)
        assert [e["seq"] for e in registry.entries()] == [1, 2]

    def test_find_by_seq_run_id_and_dir(self, tmp_path):
        registry = RunRegistry(tmp_path / "runs")
        _record_run(registry, run_id="exp:11")
        _record_run(registry, run_id="exp:11")
        assert registry.find("1")["seq"] == 1
        assert registry.find("0002-exp-11")["seq"] == 2
        # Repeated run ids resolve to the latest recording.
        assert registry.find("exp:11")["seq"] == 2
        assert registry.find("nope") is None

    def test_empty_registry_reads_clean(self, tmp_path):
        registry = RunRegistry(tmp_path / "missing")
        assert registry.entries() == []
        assert registry.next_seq() == 1


def _append_entries(runs_dir, writer, base_seq, n, barrier):
    """Child-process worker: append n pre-built index lines concurrently."""
    registry = RunRegistry(runs_dir)
    barrier.wait(timeout=30)
    for i in range(n):
        run_dir = registry.runs_dir / f"{base_seq + i:04d}-{writer}-run"
        run_dir.mkdir(parents=True, exist_ok=True)
        registry.record(run_dir, run_id=f"{writer}:{i}", command="experiment",
                        seed=i, deterministic=True, verdict="ok", wall_s=1.0)


class TestConcurrentAppenders:
    """Interleaved writers + a torn tail must never lose a complete entry.

    ``record`` writes each index line in a single ``write`` on an
    O_APPEND handle, and ``entries`` skips torn lines — so two processes
    hammering the same index can interleave *lines*, never bytes.
    """

    def test_two_processes_interleaving_drop_nothing(self, tmp_path):
        runs_dir = tmp_path / "runs"
        registry = RunRegistry(runs_dir)
        # An existing complete entry, then a torn tail with no newline —
        # exactly what a run killed mid-append leaves behind.
        first = _record_run(registry)
        with open(registry.index_path, "a", encoding="utf-8") as fh:
            fh.write('{"seq": 99, "dir": "torn')
        ctx = multiprocessing.get_context(
            "fork" if sys.platform != "win32" else "spawn")
        barrier = ctx.Barrier(2)
        n_each = 20
        workers = [
            ctx.Process(target=_append_entries,
                        args=(str(runs_dir), writer, base_seq, n_each,
                              barrier))
            for writer, base_seq in (("a", 1000), ("b", 2000))
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=60)
            assert worker.exitcode == 0
        entries = registry.entries()
        run_ids = [e.get("run_id") for e in entries]
        # The pre-existing complete entry survived both the tear and the
        # concurrent traffic...
        assert first["run_id"] in run_ids
        # ...and every concurrent append landed exactly once, parseable.
        for writer in ("a", "b"):
            recorded = sorted(r for r in run_ids
                              if isinstance(r, str)
                              and r.startswith(f"{writer}:"))
            assert recorded == sorted(f"{writer}:{i}" for i in range(n_each))
        assert len(entries) == 1 + 2 * n_each


class TestTrend:
    def test_identical_runs_trend_unchanged(self, tmp_path):
        registry = RunRegistry(tmp_path / "runs")
        _record_run(registry)
        _record_run(registry)
        reports = registry.trend()
        assert len(reports) == 1
        summary = reports[0]["summary"]
        assert summary["regressed"] == 0
        assert summary["removed"] == 0
        assert summary["unchanged"] > 0
        assert trend_exit_code(reports) == 0

    def test_health_regression_is_flagged_on_the_offending_pair(self, tmp_path):
        registry = RunRegistry(tmp_path / "runs")
        _record_run(registry)
        _record_run(registry)
        _record_run(registry, verdict="fail",
                    degradations=[{"kind": "breaker_open"}])
        reports = registry.trend()
        assert trend_exit_code(reports) == 1
        assert reports[0]["summary"]["regressed"] == 0  # pair 1->2 clean
        assert reports[1]["summary"]["regressed"] > 0   # pair 2->3 regressed
        rendered = render_trend(reports)
        assert "regressed" in rendered

    def test_last_limits_the_window(self, tmp_path):
        registry = RunRegistry(tmp_path / "runs")
        for _ in range(4):
            _record_run(registry)
        assert len(registry.trend(last=2)) == 1
        assert len(registry.trend(last=4)) == 3

    def test_missing_run_dir_is_a_note_not_a_crash(self, tmp_path):
        registry = RunRegistry(tmp_path / "runs")
        first = _record_run(registry)
        _record_run(registry)
        manifest = registry.run_path(first) / "manifest.json"
        manifest.unlink()
        reports = registry.trend()
        assert "error" in reports[0]
        assert trend_exit_code(reports) == 1
        assert "skipped" in render_trend(reports)


class TestRendering:
    def test_table_lists_runs_in_order(self, tmp_path):
        registry = RunRegistry(tmp_path / "runs")
        _record_run(registry)
        _record_run(registry, verdict="warn")
        table = render_runs_table(registry.entries())
        lines = table.splitlines()
        assert lines[0].startswith("seq")
        assert "0001-exp-11" in table and "0002-exp-11" in table
        assert "warn" in table

    def test_empty_table_and_trend_are_friendly(self):
        assert "no recorded runs" in render_runs_table([])
        assert "nothing to trend" in render_trend([])
