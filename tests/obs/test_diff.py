"""Cross-run regression detection: classification, tolerances, exit codes.

The acceptance property pinned first: a self-comparison of any artifact —
including the committed ``BENCH_pipeline.json`` perf baseline — is 100 %
``unchanged``, because every comparator takes an exact-equality fast path
before any tolerance math.
"""

import json
from pathlib import Path

import pytest

import repro.obs as obs
from repro.errors import SchemaError
from repro.obs.diff import (
    diff_artifacts,
    diff_exit_code,
    diff_paths,
    load_artifact,
    render_diff,
    sniff_kind,
    write_diff,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def _manifest(tmp_path, name="manifest.json", **overrides):
    manifest = obs.build_manifest(
        experiment_id="fig4", seed=3,
        config_fingerprint=(("n_users", 150),),
        degradations=overrides.pop("degradations", []),
        metrics=overrides.pop("metrics", {}),
        deterministic=True,
        extra=overrides,
    )
    return obs.write_manifest(manifest, tmp_path / name)


class TestSelfDiff:
    def test_manifest_self_diff_is_all_unchanged(self, tmp_path):
        path = _manifest(tmp_path, metrics={
            "autosens_cache_total": {
                "kind": "counter", "help": "",
                "series": {'{outcome="hit"}': 31, '{outcome="miss"}': 2},
            },
        })
        report = diff_paths(path, path)
        summary = report["summary"]
        assert summary["regressed"] == 0
        assert summary["improved"] == 0
        assert summary["added"] == 0
        assert summary["removed"] == 0
        assert summary["unchanged"] == len(report["entries"]) > 0
        assert diff_exit_code(report) == 0

    def test_committed_bench_baseline_self_diff_is_all_unchanged(self):
        bench = REPO_ROOT / "BENCH_pipeline.json"
        report = diff_paths(bench, bench)
        assert report["kind"] == "bench"
        summary = report["summary"]
        assert summary["unchanged"] == len(report["entries"]) > 0
        assert summary["regressed"] == summary["improved"] == 0
        assert diff_exit_code(report) == 0

    def test_fresh_deterministic_run_matches_committed_baseline(self, tmp_path):
        """The CI ``obs-health`` property: a deterministic seed-11 smoke run
        diffs 100 % unchanged against the committed baseline manifest.
        If this fails after an intentional pipeline change, regenerate
        ``tests/obs/golden/baseline_manifest.json`` (see OBSERVABILITY.md)."""
        from repro.cli.main import main

        manifest = tmp_path / "manifest.json"
        assert main([
            "experiment", "bottleneck", "--scale", "small", "--seed", "11",
            "--no-plots", "--deterministic-trace",
            "--manifest-out", str(manifest),
        ]) == 0
        baseline = Path(__file__).parent / "golden" / "baseline_manifest.json"
        report = diff_paths(baseline, manifest)
        summary = report["summary"]
        assert summary["unchanged"] == len(report["entries"]) > 0, summary
        assert diff_exit_code(report) == 0


class TestClassification:
    def test_direction_heuristics(self):
        a = {"m": {"kind": "counter", "series": {
            '{outcome="hit"}': 100.0, '{outcome="miss"}': 100.0,
            '{kind="other"}': 100.0}}}
        b = {"m": {"kind": "counter", "series": {
            '{outcome="hit"}': 200.0, '{outcome="miss"}': 200.0,
            '{kind="other"}': 200.0}}}
        report = diff_artifacts(a, b)
        by_key = {e["key"]: e["classification"] for e in report["entries"]}
        assert by_key['m{outcome="hit"}'] == "improved"
        assert by_key['m{outcome="miss"}'] == "regressed"
        # No known direction: any drift beyond tolerance is a regression.
        assert by_key['m{kind="other"}'] == "regressed"

    def test_drift_within_tolerance_is_unchanged(self):
        a = {"m": {"kind": "counter", "series": {"{}": 100.0}}}
        b = {"m": {"kind": "counter", "series": {"{}": 105.0}}}
        report = diff_artifacts(a, b, rel_tol=0.10)
        assert report["entries"][0]["classification"] == "unchanged"
        report = diff_artifacts(a, b, rel_tol=0.01)
        assert report["entries"][0]["classification"] == "regressed"

    def test_added_and_removed_series(self):
        a = {"m": {"kind": "counter", "series": {"{a}": 1.0}}}
        b = {"m": {"kind": "counter", "series": {"{b}": 1.0}}}
        report = diff_artifacts(a, b)
        by_key = {e["key"]: e["classification"] for e in report["entries"]}
        assert by_key["m{a}"] == "removed"
        assert by_key["m{b}"] == "added"
        assert diff_exit_code(report) == 1  # removed counts as drift

    def test_histograms_compare_count_and_sum(self):
        a = {"h": {"kind": "histogram", "series": {"{}": {
            "buckets": {"1": 3}, "inf": 0, "sum": 2.5, "count": 3}}}}
        b = json.loads(json.dumps(a))
        report = diff_artifacts(a, b)
        keys = {e["key"] for e in report["entries"]}
        assert keys == {"h{}.count", "h{}.sum"}
        assert all(e["classification"] == "unchanged"
                   for e in report["entries"])


class TestManifestDiff:
    def test_new_degradations_regress(self, tmp_path):
        a = _manifest(tmp_path, "a.json")
        b = _manifest(tmp_path, "b.json",
                      degradations=[{"kind": "starved_slice"}])
        report = diff_paths(a, b)
        entry = next(e for e in report["entries"]
                     if e["key"] == "degradations")
        assert entry["classification"] == "regressed"
        assert diff_exit_code(report) == 1

    def test_health_verdict_regression_is_flagged(self, tmp_path):
        ok = {"verdict": "ok", "counts": {"ok": 5, "warn": 0, "fail": 0},
              "schema": 1, "findings": [], "stages": {}}
        warn = {"verdict": "warn", "counts": {"ok": 4, "warn": 1, "fail": 0},
                "schema": 1, "findings": [], "stages": {}}
        a = _manifest(tmp_path, "a.json", health=ok)
        b = _manifest(tmp_path, "b.json", health=warn)
        report = diff_paths(a, b)
        by_key = {e["key"]: e["classification"] for e in report["entries"]}
        assert by_key["health.verdict_rank"] == "regressed"
        assert by_key["health.findings[warn]"] == "regressed"

    def test_span_share_shift_is_detected(self, tmp_path):
        a = _manifest(tmp_path, "a.json", span_timings={
            "alpha": {"count": 4, "seconds": 1.0},
            "sweep": {"count": 1, "seconds": 9.0},
        })
        b = _manifest(tmp_path, "b.json", span_timings={
            "alpha": {"count": 4, "seconds": 9.0},
            "sweep": {"count": 1, "seconds": 1.0},
        })
        report = diff_paths(a, b)
        by_key = {e["key"]: e["classification"] for e in report["entries"]}
        assert by_key["span_share[alpha]"] == "regressed"
        assert by_key["span_share[sweep]"] == "improved"
        assert by_key["span_count[alpha]"] == "unchanged"

    def test_run_directory_resolves_to_its_manifest(self, tmp_path):
        _manifest(tmp_path)
        report = diff_paths(tmp_path, tmp_path)
        assert report["kind"] == "manifest"


class TestCurveDiff:
    def _curve(self, nlp):
        return {"series": {"nlp": nlp}, "bins": list(range(len(nlp)))}

    def test_identical_curves_unchanged(self):
        a = self._curve([1.0, 0.8, None, 0.5])
        report = diff_artifacts(a, json.loads(json.dumps(a)))
        assert report["kind"] == "curve"
        assert report["summary"]["regressed"] == 0

    def test_deviation_beyond_tolerance_regresses(self):
        a = self._curve([1.0, 0.8, 0.5])
        b = self._curve([1.0, 0.8, 0.4])
        assert diff_artifacts(a, b, curve_tol=0.02)["summary"]["regressed"] == 1
        assert diff_artifacts(a, b, curve_tol=0.2)["summary"]["regressed"] == 0

    def test_lost_support_regresses(self):
        a = self._curve([1.0, 0.8, 0.5])
        b = self._curve([1.0, None, None])
        report = diff_artifacts(a, b)
        entry = next(e for e in report["entries"]
                     if e["key"] == "curve.n_valid_bins")
        assert entry["classification"] == "regressed"


class TestPlumbing:
    def test_kind_sniffing(self):
        assert sniff_kind({"schema": 1, "scales": {}}) == "bench"
        assert sniff_kind({"run_id": "x"}) == "manifest"
        assert sniff_kind({"verdict": "ok", "findings": []}) == "health"
        assert sniff_kind({"series": {"nlp": []}}) == "curve"
        with pytest.raises(SchemaError):
            sniff_kind({"what": "ever"})

    def test_kind_mismatch_refuses(self):
        with pytest.raises(SchemaError):
            diff_artifacts({"run_id": "x"}, {"verdict": "ok", "findings": []})

    def test_render_lists_regressions_first(self):
        a = {"m": {"kind": "counter", "series": {
            '{outcome="miss"}': 1.0, '{outcome="hit"}': 1.0}}}
        b = {"m": {"kind": "counter", "series": {
            '{outcome="miss"}': 50.0, '{outcome="hit"}': 50.0}}}
        text = render_diff(diff_artifacts(a, b))
        regressed_at = text.index("regressed")
        improved_at = text.index("improved")
        assert regressed_at < improved_at
        assert "summary:" in text

    def test_write_diff_roundtrip(self, tmp_path):
        report = diff_artifacts({"run_id": "x"}, {"run_id": "x"})
        path = write_diff(report, tmp_path / "diff.json")
        assert json.loads(path.read_text()) == report

    def test_load_artifact_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        with pytest.raises(SchemaError):
            load_artifact(bad)
        with pytest.raises(SchemaError):
            load_artifact(tmp_path / "missing.json")
