"""Metrics instruments and the Prometheus/JSON exporters (golden)."""

from pathlib import Path

import pytest

from repro.errors import ConfigError
from repro.obs.metrics import (
    MetricsRegistry,
    bucket_quantile,
    write_metrics_json,
    write_metrics_prometheus,
)

GOLDEN = Path(__file__).parent / "golden"

STAGE_BUCKETS = (0.001, 0.01, 0.1, 1.0)


def sample_registry() -> MetricsRegistry:
    """The fixed registry the golden exporter files were rendered from."""
    reg = MetricsRegistry()
    reg.inc("autosens_slice_cache_total", 3.0, help="slice cache lookups",
            outcome="hit", kind="action")
    reg.inc("autosens_slice_cache_total", 1.0, outcome="miss", kind="action")
    reg.set_gauge("autosens_active_workers", 4, help="pool width")
    reg.observe("autosens_stage_seconds", 0.003, help="stage wall time",
                buckets=STAGE_BUCKETS, stage="sweep")
    reg.observe("autosens_stage_seconds", 0.25,
                buckets=STAGE_BUCKETS, stage="sweep")
    return reg


class TestCounter:
    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        reg.inc("x", 1.0, a="1", b="2")
        reg.inc("x", 2.0, b="2", a="1")
        assert reg.counter("x").value(a="1", b="2") == 3.0

    def test_counters_cannot_decrease(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigError):
            reg.inc("x", -1.0)

    def test_unlabeled_series(self):
        reg = MetricsRegistry()
        reg.inc("plain")
        assert reg.counter("plain").value() == 1.0


class TestGauge:
    def test_set_overwrites_and_inc_is_signed(self):
        reg = MetricsRegistry()
        reg.set_gauge("g", 10.0)
        reg.gauge("g").inc(-3.0)
        assert reg.gauge("g").value() == 7.0


class TestHistogram:
    def test_observations_land_in_the_right_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=(1.0, 10.0))
        h.observe(0.5)
        h.observe(5.0)
        h.observe(100.0)  # above the last bound -> +Inf
        assert h.value() == (105.5, 3)
        snap = h.snapshot()[""]
        assert snap["buckets"] == {"1": 1, "10": 1}
        assert snap["inf"] == 1

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ConfigError):
            MetricsRegistry().histogram("h", buckets=(10.0, 1.0))


class TestQuantiles:
    def test_interpolates_within_the_crossing_bucket(self):
        # 10 observations spread evenly across (0, 10]: p50 crosses the
        # single bucket at 50% of its width.
        assert bucket_quantile((10.0,), (10, 0), 0.5) == pytest.approx(5.0)

    def test_first_bucket_interpolates_from_zero(self):
        assert bucket_quantile((1.0, 10.0), (4, 0, 0), 0.5) == pytest.approx(0.5)

    def test_inf_crossing_clamps_to_last_finite_bound(self):
        assert bucket_quantile((1.0, 10.0), (0, 0, 7), 0.99) == 10.0

    def test_empty_series_is_nan(self):
        import math

        assert math.isnan(bucket_quantile((1.0,), (0, 0), 0.5))

    def test_quantiles_are_monotone(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=STAGE_BUCKETS)
        for v in (0.002, 0.003, 0.02, 0.07, 0.4, 0.9):
            h.observe(v)
        q = h.quantiles()
        assert q["p50"] <= q["p90"] <= q["p99"]
        assert set(q) == {"p50", "p90", "p99"}

    def test_unknown_label_set_is_empty(self):
        reg = MetricsRegistry()
        assert reg.histogram("h").quantiles(stage="never") == {}

    def test_snapshot_and_prometheus_carry_quantiles(self):
        reg = sample_registry()
        snap = reg.snapshot()["autosens_stage_seconds"]["series"]
        assert snap['{stage="sweep"}']["quantiles"] == {
            "p50": 0.01, "p90": 0.82, "p99": 0.982}
        text = reg.render_prometheus()
        assert ('# QUANTILE autosens_stage_seconds{stage="sweep"} '
                "p50=0.01 p90=0.82 p99=0.982") in text


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("c") is reg.counter("c")
        assert len(reg) == 1

    def test_kind_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ConfigError):
            reg.gauge("x")


class TestExporters:
    def test_prometheus_matches_golden(self, tmp_path):
        out = tmp_path / "metrics.prom"
        write_metrics_prometheus(sample_registry(), out)
        assert out.read_bytes() == (GOLDEN / "metrics.prom").read_bytes()

    def test_json_snapshot_matches_golden(self, tmp_path):
        out = tmp_path / "metrics.json"
        write_metrics_json(sample_registry(), out)
        assert out.read_bytes() == (GOLDEN / "metrics.json").read_bytes()

    def test_two_identical_workloads_render_identically(self):
        assert (sample_registry().render_prometheus()
                == sample_registry().render_prometheus())

    def test_prometheus_shape(self):
        text = sample_registry().render_prometheus()
        assert "# TYPE autosens_slice_cache_total counter" in text
        assert "# HELP autosens_slice_cache_total slice cache lookups" in text
        assert 'le="+Inf"' in text
        assert text.endswith("\n")

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""
        assert MetricsRegistry().snapshot() == {}


class TestLabelEscaping:
    """Exposition format: \\, " and newline must be escaped in label values."""

    def test_special_characters_are_escaped(self):
        reg = MetricsRegistry()
        reg.inc("autosens_paths_total", 1.0,
                path='C:\\logs\\"daily"\nnight')
        text = reg.render_prometheus()
        assert ('autosens_paths_total{'
                'path="C:\\\\logs\\\\\\"daily\\"\\nnight"} 1') in text
        assert "\n" not in text.splitlines()[-1]  # value stays on one line

    def test_plain_values_are_untouched(self):
        reg = MetricsRegistry()
        reg.inc("autosens_x_total", 1.0, outcome="hit")
        assert 'autosens_x_total{outcome="hit"} 1' in reg.render_prometheus()
