"""Progress tracking: stage folding, EWMA throughput, ETA, rendering."""

import math

from repro.obs.progress import (
    DEFAULT_HALFLIFE_S,
    PROGRESS_SCHEMA,
    ProgressTracker,
    render_progress,
    snapshot_from_manifest,
)


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def _tracker():
    clock = FakeClock()
    return ProgressTracker(clock=clock), clock


class TestStageFolding:
    def test_stage_then_tasks_fold_into_done_over_total(self):
        tracker, clock = _tracker()
        tracker.offer({"type": "stage", "stage": "sweep", "total": 10})
        clock.advance(1.0)
        tracker.offer({"type": "tasks", "stage": "sweep", "done": 4})
        snap = tracker.snapshot()
        assert snap["schema"] == PROGRESS_SCHEMA
        stage = snap["stages"]["sweep"]
        assert stage["done"] == 4
        assert stage["total"] == 10
        assert stage["rate_per_s"] == 4.0

    def test_repeated_stage_announcements_accumulate_the_total(self):
        tracker, _ = _tracker()
        tracker.offer({"type": "stage", "stage": "shard", "total": 3})
        tracker.offer({"type": "stage", "stage": "shard", "total": 3})
        assert tracker.snapshot()["stages"]["shard"]["total"] == 6

    def test_tasks_before_stage_announcement_still_count(self):
        tracker, _ = _tracker()
        tracker.offer({"type": "tasks", "stage": "late", "done": 2})
        stage = tracker.snapshot()["stages"]["late"]
        assert stage["done"] == 2
        assert stage["total"] is None
        assert stage["eta_s"] is None  # no total, no ETA

    def test_unknown_event_types_are_ignored(self):
        tracker, _ = _tracker()
        tracker.offer({"type": "metric", "metric": "x"})
        tracker.offer({"type": "nonsense"})
        assert tracker.snapshot()["stages"] == {}
        assert tracker.events_seen == 2


class TestRateAndEta:
    def test_eta_tracks_remaining_over_rate(self):
        tracker, clock = _tracker()
        tracker.offer({"type": "stage", "stage": "s", "total": 100})
        clock.advance(2.0)
        tracker.offer({"type": "tasks", "stage": "s", "done": 20})
        stage = tracker.snapshot()["stages"]["s"]
        assert stage["rate_per_s"] == 10.0
        assert stage["eta_s"] == 8.0  # 80 remaining at 10/s

    def test_rate_is_an_ewma_not_a_lifetime_mean(self):
        tracker, clock = _tracker()
        tracker.offer({"type": "stage", "stage": "s", "total": 1000})
        clock.advance(1.0)
        tracker.offer({"type": "tasks", "stage": "s", "done": 100})  # 100/s
        # Long enough after the half-life, the old rate should mostly decay.
        clock.advance(DEFAULT_HALFLIFE_S * 10)
        tracker.offer({"type": "tasks", "stage": "s", "done": 1})
        rate = tracker.snapshot()["stages"]["s"]["rate_per_s"]
        assert rate < 10.0

    def test_completed_stage_advertises_no_eta(self):
        tracker, clock = _tracker()
        tracker.offer({"type": "stage", "stage": "s", "total": 2})
        clock.advance(1.0)
        tracker.offer({"type": "tasks", "stage": "s", "done": 2})
        assert tracker.snapshot()["stages"]["s"]["eta_s"] is None


class TestClamps:
    """Pathological inputs must never leak impossible frames to /progress
    (validate_obs --progress enforces done <= total and finite,
    non-negative rates/ETAs)."""

    def _assert_frame_sane(self, snap):
        for stage in snap["stages"].values():
            if stage["total"] is not None:
                assert stage["done"] <= stage["total"]
            for key in ("rate_per_s", "eta_s"):
                if stage[key] is not None:
                    assert math.isfinite(stage[key])
                    assert stage[key] >= 0.0

    def test_done_over_total_is_clamped_in_the_snapshot(self):
        tracker, clock = _tracker()
        tracker.offer({"type": "stage", "stage": "s", "total": 5})
        clock.advance(1.0)
        # Retried tasks over-report: 8 completions against a total of 5.
        tracker.offer({"type": "tasks", "stage": "s", "done": 8})
        stage = tracker.snapshot()["stages"]["s"]
        assert stage["done"] == 5
        assert stage["eta_s"] is None  # nothing "remaining" to estimate
        self._assert_frame_sane(tracker.snapshot())

    def test_zero_duration_window_yields_finite_rate_and_eta(self):
        tracker, clock = _tracker()
        tracker.offer({"type": "stage", "stage": "s", "total": 1000})
        # Two task batches with the clock frozen: dt == 0 exactly.
        tracker.offer({"type": "tasks", "stage": "s", "done": 10})
        tracker.offer({"type": "tasks", "stage": "s", "done": 10})
        self._assert_frame_sane(tracker.snapshot())

    def test_backwards_clock_never_emits_negative_rate_or_eta(self):
        tracker, clock = _tracker()
        tracker.offer({"type": "stage", "stage": "s", "total": 100})
        clock.advance(1.0)
        tracker.offer({"type": "tasks", "stage": "s", "done": 10})
        clock.advance(-5.0)  # e.g. a clock source swap under the tracker
        tracker.offer({"type": "tasks", "stage": "s", "done": 10})
        self._assert_frame_sane(tracker.snapshot())


class TestManifestSnapshot:
    def _manifest(self, exit_status=0):
        return {
            "run_id": "exp:11",
            "exit_status": exit_status,
            "span_timings": {
                "preference_compute": {"seconds": 2.0, "count": 3},
                "ingest": {"seconds": 0.4, "count": 1},
            },
        }

    def test_snapshot_carries_state_spans_and_elapsed(self):
        snap = snapshot_from_manifest(self._manifest())
        assert snap["schema"] == PROGRESS_SCHEMA
        assert snap["state"] == "done"
        assert snap["run_id"] == "exp:11"
        assert snap["spans"] == {"ingest": 1, "preference_compute": 3}
        assert snap["elapsed_s"] == 2.4
        assert snap["source"] == "manifest"

    def test_failed_exit_status_maps_to_failed_state(self):
        snap = snapshot_from_manifest(self._manifest(exit_status=3))
        assert snap["state"] == "failed"

    def test_render_labels_the_manifest_only_summary(self):
        frame = render_progress(snapshot_from_manifest(self._manifest()),
                                source="runs/0001-exp-11")
        assert "manifest-only summary" in frame
        assert "preference_compute" in frame


class TestLifecycle:
    def test_run_events_set_identity_and_terminal_state(self):
        tracker, clock = _tracker()
        tracker.offer({"type": "run", "phase": "start", "run_id": "exp:11"})
        assert tracker.snapshot()["run_id"] == "exp:11"
        clock.advance(3.0)
        tracker.offer({"type": "run", "phase": "done"})
        snap = tracker.snapshot()
        assert snap["state"] == "done"
        assert snap["elapsed_s"] == 3.0

    def test_span_events_count_and_track_the_open_path(self):
        tracker, _ = _tracker()
        tracker.offer({"type": "span_open", "name": "alpha",
                       "path": "/sweep/alpha"})
        assert tracker.snapshot()["current"] == "/sweep/alpha"
        tracker.offer({"type": "span_close", "name": "alpha",
                       "path": "/sweep/alpha"})
        snap = tracker.snapshot()
        assert snap["spans"] == {"alpha": 1}
        assert snap["current"] is None

    def test_terminal_snapshot_freezes_elapsed(self):
        tracker, clock = _tracker()
        clock.advance(2.0)
        tracker.finish("failed")
        clock.advance(50.0)
        snap = tracker.snapshot()
        assert snap["state"] == "failed"
        assert snap["elapsed_s"] == 2.0


class TestRender:
    def test_render_shows_bars_counts_and_eta(self):
        tracker, clock = _tracker()
        tracker.offer({"type": "run", "phase": "start", "run_id": "r1"})
        tracker.offer({"type": "stage", "stage": "sweep", "total": 10})
        clock.advance(1.0)
        tracker.offer({"type": "tasks", "stage": "sweep", "done": 5})
        frame = render_progress(tracker.snapshot(), source="host:1234")
        assert "run r1" in frame
        assert "[host:1234]" in frame
        assert "5/10" in frame
        assert "sweep" in frame
        assert "#" in frame and "." in frame  # a half-full bar

    def test_render_tolerates_an_empty_snapshot(self):
        tracker, _ = _tracker()
        frame = render_progress(tracker.snapshot())
        assert "no stage progress yet" in frame

    def test_render_surfaces_dropped_events(self):
        tracker, _ = _tracker()
        tracker.dropped = 12
        assert "events dropped: 12" in render_progress(tracker.snapshot())
