"""Instrumentation contracts across the pipeline, executors, and ingestion.

The load-bearing property: a *task* span's id is a pure function of
``(trace_id, task qualname, global index)`` — so the same sweep yields the
same span ids whether it runs serially, fanned out over process-pool
workers, or resumed from a checkpoint journal (cached tasks reuse their
cold-run ids, stamped ``cached=True``).
"""

import pytest

import repro.obs as obs
from repro.core.pipeline import AutoSens, AutoSensConfig
from repro.obs import span_identity
from repro.parallel import (
    CheckpointJournal,
    ProcessExecutor,
    ResilientExecutor,
    SerialExecutor,
)
from repro.telemetry.ingest import IngestCollector, IngestPolicy
from repro.telemetry.quality import quality_report
from repro.workload.scenarios import owa_scenario


def _double(x):
    return x * 2


def _task_ids(records):
    return {r["id"] for r in records if r["name"] == "task"}


class TestTaskSpanIdentity:
    def test_serial_and_process_ids_match(self):
        with obs.session(enabled=True, run_id="ids", deterministic=True):
            SerialExecutor().map_ordered(_double, [1, 2, 3, 4])
            serial = _task_ids(obs.trace_records())
        with obs.session(enabled=True, run_id="ids", deterministic=True):
            ProcessExecutor(max_workers=2, chunk_size=2).map_ordered(
                _double, [1, 2, 3, 4])
            pooled = _task_ids(obs.trace_records())
        expected = {
            span_identity("ids", "task", f"{_double.__qualname__}[{i}]")
            for i in range(4)
        }
        assert serial == pooled == expected

    def test_process_task_spans_hang_under_the_pool_map_span(self):
        with obs.session(enabled=True, run_id="ids", deterministic=True):
            ProcessExecutor(max_workers=2, chunk_size=2).map_ordered(
                _double, [1, 2, 3, 4])
            records = obs.trace_records()
        pool = [r for r in records if r["name"] == "pool_map"]
        assert len(pool) == 1
        tasks = [r for r in records if r["name"] == "task"]
        assert len(tasks) == 4
        assert all(t["parent"] == pool[0]["id"] for t in tasks)
        assert {t["tid"] for t in tasks} == {1, 3}  # 1 + chunk base

    def test_resumed_run_reuses_cached_task_ids(self, tmp_path):
        journal = CheckpointJournal(tmp_path, namespace="sweep")
        with obs.session(enabled=True, run_id="res", deterministic=True):
            ResilientExecutor(checkpoint=journal).map_ordered(
                _double, [1, 2, 3, 4])
            cold = _task_ids(obs.trace_records())
        with obs.session(enabled=True, run_id="res", deterministic=True) as ctx:
            ResilientExecutor(checkpoint=journal).map_ordered(
                _double, [1, 2, 3, 4])
            resumed = obs.trace_records()
            hits = ctx.metrics.counter("autosens_checkpoint_total")
        tasks = [r for r in resumed if r["name"] == "task"]
        assert _task_ids(resumed) == cold
        assert all(t["attrs"].get("cached") is True for t in tasks)
        assert hits.value(outcome="hit") == 4.0

    def test_cold_run_counts_misses(self, tmp_path):
        journal = CheckpointJournal(tmp_path, namespace="sweep")
        with obs.session(enabled=True, run_id="res") as ctx:
            ResilientExecutor(checkpoint=journal).map_ordered(_double, [1, 2])
            counter = ctx.metrics.counter("autosens_checkpoint_total")
            assert counter.value(outcome="miss") == 2.0
            assert counter.value(outcome="hit") == 0.0


class TestPipelineSpans:
    @pytest.fixture(scope="class")
    def logs(self):
        return owa_scenario(seed=3, duration_days=1.0, n_users=60,
                            candidates_per_user_day=30.0).generate().logs

    def test_preference_curve_emits_stage_spans(self, logs):
        engine = AutoSens(AutoSensConfig(seed=0))
        action = logs.action_names()[0]
        with obs.session(enabled=True, run_id="pipe", deterministic=True):
            engine.preference_curve(logs, action=action)
            names = {r["name"] for r in obs.trace_records()}
        assert {"preference_curve", "slice", "slotted_counts",
                "slotted_counts.unbiased", "corrected_reference",
                "corrected_histograms"} <= names

    def test_curve_span_id_is_keyed_by_slice(self, logs):
        engine = AutoSens(AutoSensConfig(seed=0))
        action = logs.action_names()[0]
        with obs.session(enabled=True, run_id="pipe", deterministic=True):
            engine.preference_curve(logs, action=action)
            curve = [r for r in obs.trace_records()
                     if r["name"] == "preference_curve"]
        key = f"curve:{(str(action), None, None, None, 30)}"
        assert curve[0]["id"] == span_identity("pipe", "preference_curve", key)

    def test_cache_stats_public_surface(self, logs):
        engine = AutoSens(AutoSensConfig(seed=0))
        empty = engine.cache_stats()
        assert empty == {"hits": 0, "misses": 0, "evictions": 0,
                         "entries": 0, "max_entries": engine.cache.max_entries}
        action = logs.action_names()[0]
        engine.preference_curve(logs, action=action)
        engine.preference_curve(logs, action=action)
        stats = engine.cache_stats()
        assert stats["hits"] >= 1
        assert stats["misses"] >= 1
        assert stats["entries"] >= 1

    def test_cache_stats_without_cache(self):
        engine = AutoSens(AutoSensConfig(seed=0), cache=False)
        assert engine.cache_stats()["max_entries"] == 0

    def test_cache_counters_flow_to_metrics(self, logs):
        engine = AutoSens(AutoSensConfig(seed=0))
        action = logs.action_names()[0]
        with obs.session(enabled=True) as ctx:
            engine.preference_curve(logs, action=action)
            engine.preference_curve(logs, action=action)
            counter = ctx.metrics.counter("autosens_slice_cache_total")
            assert counter.value(outcome="miss", kind="slice") >= 1.0
            assert counter.value(outcome="hit", kind="slice") >= 1.0


class TestIngestInstrumentation:
    def _collect(self, policy):
        collector = IngestCollector(policy, source="x.jsonl")
        for _ in range(8):
            collector.good()
        collector.bad(9, "json-decode", "{oops", ValueError("bad"))
        return collector.finish()

    def test_quarantine_counters_and_outcome(self, tmp_path):
        qpath = tmp_path / "q.jsonl"
        policy = IngestPolicy(mode="quarantine", max_bad_share=0.5,
                              quarantine_path=qpath)
        with obs.session(enabled=True) as ctx:
            self._collect(policy)
            rows = ctx.metrics.counter("autosens_ingest_rows_total")
            rejects = ctx.metrics.counter("autosens_ingest_rejects_total")
        assert rows.value(mode="quarantine", outcome="read") == 8.0
        assert rows.value(mode="quarantine", outcome="quarantined") == 1.0
        assert rejects.value(mode="quarantine", reason="json-decode") == 1.0
        assert qpath.exists()

    def test_lenient_counts_skips(self):
        policy = IngestPolicy(mode="lenient", max_bad_share=0.5)
        with obs.session(enabled=True) as ctx:
            self._collect(policy)
            rows = ctx.metrics.counter("autosens_ingest_rows_total")
        assert rows.value(mode="lenient", outcome="skipped") == 1.0

    def test_quality_report_surfaces_fault_classes_and_quarantine(
            self, tmp_path):
        qpath = tmp_path / "q.jsonl"
        policy = IngestPolicy(mode="quarantine", max_bad_share=0.5,
                              quarantine_path=qpath)
        report = self._collect(policy)
        logs = owa_scenario(seed=3, duration_days=1.0, n_users=60,
                            candidates_per_user_day=30.0).generate().logs
        quality = quality_report(logs, ingest=report)
        (flag,) = [f for f in quality.flags if "rejected" in f.message]
        assert "by fault class: json-decode=1" in flag.message
        assert f"quarantined to {qpath}" in flag.message


class TestDegradations:
    def test_record_degradation_lands_in_context_and_counter(self):
        with obs.session(enabled=True) as ctx:
            obs.record_degradation("starved_slice", detail="too few rows")
            assert ctx.degradations == [
                {"kind": "starved_slice", "detail": "too few rows"}]
            counter = ctx.metrics.counter("autosens_degradations_total")
            assert counter.value(kind="starved_slice") == 1.0
