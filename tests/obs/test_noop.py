"""The disabled path must be allocation-free and side-effect-free.

This is the acceptance property "near-free when disabled": with the default
context installed, ``obs.span`` hands back the *shared* no-op singleton
(identity-checked — a fresh object per call would mean per-call garbage on
every hot loop), counters never materialize a registry entry, and the
instrumented executors take their untraced fast path.
"""

import repro.obs as obs
from repro.obs import NOOP_SPAN
from repro.parallel import SerialExecutor


class TestNoopSpan:
    def test_span_returns_the_shared_singleton(self):
        assert obs.span("a") is NOOP_SPAN
        assert obs.span("b", key="k", heavy="attr") is NOOP_SPAN

    def test_singleton_is_reusable_and_inert(self):
        with obs.span("outer") as outer:
            with obs.span("inner") as inner:
                assert outer is inner is NOOP_SPAN
        assert NOOP_SPAN.set(x=1) is NOOP_SPAN
        assert NOOP_SPAN.duration_s == 0.0
        assert obs.trace_records() == []

    def test_noop_span_holds_no_state(self):
        assert not hasattr(NOOP_SPAN, "__dict__")


class TestNoopMetrics:
    def test_disabled_writes_never_create_series(self):
        obs.inc("autosens_should_not_exist", outcome="hit")
        obs.observe("autosens_should_not_exist_s", 1.0)
        obs.set_gauge("autosens_should_not_exist_g", 1.0)
        obs.record_degradation("should_not_exist")
        assert len(obs.metrics()) == 0
        assert obs.current().degradations == []

    def test_enabled_then_disabled_is_clean(self):
        with obs.session(enabled=True):
            obs.inc("x")
            assert len(obs.metrics()) == 1
        assert len(obs.metrics()) == 0


class TestNoopHealthAndProfile:
    def test_disabled_findings_are_swallowed(self):
        from repro.obs.probes import probe_density_correlation, emit

        emit(probe_density_correlation(-0.5))
        obs.record_finding(probe_density_correlation(-0.5)[0])
        assert obs.findings() == []

    def test_disabled_context_has_no_profiler(self):
        assert obs.profiler() is None
        report = obs.build_health_report()
        assert report.verdict == "ok"
        assert report.findings == []


class TestNoopExecutor:
    def test_serial_map_produces_no_spans_when_disabled(self):
        assert not obs.enabled()
        result = SerialExecutor().map_ordered(lambda x: x * 2, [1, 2, 3])
        assert result == [2, 4, 6]
        assert obs.trace_records() == []


class TestNoopEventBus:
    """The bus is compiled into the hot paths but must cost ~nothing off."""

    def test_disabled_context_publishes_nothing(self):
        obs.event("run", phase="start")
        assert not obs.events_active()
        assert obs.event_bus().published == 0
        assert obs.event_bus().stats()["sinks"] == 0

    def test_enabled_but_sinkless_bus_stays_inert(self):
        with obs.session(enabled=True):
            with obs.span("alpha"):
                obs.inc("autosens_x_total")
                obs.event("tasks", stage="s", done=1)
            assert obs.event_bus().published == 0
            assert obs.event_bus().seq == 0

    def test_sinkless_executor_run_publishes_nothing(self):
        with obs.session(enabled=True):
            SerialExecutor().map_ordered(_double, [1, 2, 3])
            assert obs.event_bus().published == 0

    def test_disabled_tracer_has_no_listener(self):
        assert obs.current().tracer.listener is None


def _double(x):
    return 2 * x
