"""Span profiling: attribution correctness and the identity guarantee.

The load-bearing property: attaching a :class:`SpanProfiler` to the tracer
must not perturb a single byte of the trace — profiling reads its own
clocks and never touches span records, so deterministic artifacts stay
deterministic whether profiling is on or off.
"""

import time

import pytest

import repro.obs as obs
from repro.errors import SchemaError
from repro.obs.profile import (
    SpanProfiler,
    StackSampler,
    build_profile,
    folded_from_spans,
    load_profile,
    top_by_self_time,
    write_profile,
)


def _spin(seconds):
    """Burn CPU (not sleep) so process_time moves."""
    deadline = time.process_time() + seconds
    while time.process_time() < deadline:
        sum(range(500))


class TestSpanProfiler:
    def test_self_time_excludes_children(self):
        profiler = SpanProfiler()
        profiler.on_enter("outer")
        profiler.on_enter("inner")
        _spin(0.02)
        profiler.on_exit("inner")
        profiler.on_exit("outer")
        spans = profiler.snapshot()
        assert spans["inner"]["cpu_self_s"] == pytest.approx(
            spans["inner"]["cpu_total_s"], rel=0.05)
        # The outer span did nothing itself: all its time is the child's.
        assert spans["outer"]["cpu_self_s"] < spans["inner"]["cpu_self_s"]
        assert spans["outer"]["cpu_total_s"] >= spans["inner"]["cpu_total_s"]

    def test_out_of_order_exit_folds_into_parent(self):
        profiler = SpanProfiler()
        profiler.on_enter("outer")
        profiler.on_enter("dangling")
        profiler.on_exit("outer")  # pops through the unmatched frame
        profiler.on_exit("phantom")  # no matching frame at all: ignored
        spans = profiler.snapshot()
        assert set(spans) == {"outer"}
        assert spans["outer"]["count"] == 1

    def test_repeated_spans_accumulate(self):
        profiler = SpanProfiler()
        for _ in range(3):
            profiler.on_enter("stage")
            profiler.on_exit("stage")
        assert profiler.snapshot()["stage"]["count"] == 3

    def test_rss_attribution_is_positive_on_posix(self):
        profiler = SpanProfiler()
        profiler.on_enter("s")
        profiler.on_exit("s")
        assert profiler.snapshot()["s"]["rss_peak_kb"] > 0


class TestTracerIdentity:
    def test_trace_records_identical_with_and_without_profiler(self):
        def run(profile):
            with obs.session(enabled=True, deterministic=True):
                if profile:
                    obs.current().tracer.profiler = SpanProfiler()
                with obs.span("experiment", key="experiment:x:1"):
                    with obs.span("stage", n=3):
                        pass
                    with obs.span("stage", n=4):
                        pass
                return obs.trace_records()

        assert run(profile=False) == run(profile=True)

    def test_configure_profile_flag_installs_the_hook(self):
        with obs.session(enabled=True):
            assert obs.profiler() is None
        obs.configure(trace=True, profile=True)
        try:
            assert isinstance(obs.profiler(), SpanProfiler)
            with obs.span("probed"):
                pass
            assert "probed" in obs.profiler().spans
        finally:
            obs.disable()

    def test_profiler_is_none_when_disabled(self):
        assert obs.profiler() is None


class TestFoldedAndTop:
    def test_top_orders_by_self_time_with_name_tiebreak(self):
        snapshot = {
            "b": {"count": 1, "cpu_self_s": 0.5, "cpu_total_s": 0.5,
                  "wall_s": 0.5, "rss_peak_kb": 1.0},
            "a": {"count": 1, "cpu_self_s": 0.5, "cpu_total_s": 0.5,
                  "wall_s": 0.5, "rss_peak_kb": 1.0},
            "c": {"count": 1, "cpu_self_s": 0.9, "cpu_total_s": 0.9,
                  "wall_s": 0.9, "rss_peak_kb": 1.0},
        }
        assert [r["span"] for r in top_by_self_time(snapshot)] == ["c", "a", "b"]
        assert [r["span"] for r in top_by_self_time(snapshot, limit=1)] == ["c"]

    def test_folded_from_spans_uses_trace_paths(self):
        snapshot = {
            "inner": {"count": 1, "cpu_self_s": 0.013, "cpu_total_s": 0.013,
                      "wall_s": 0.013, "rss_peak_kb": 1.0},
        }
        records = [
            {"path": "/outer/inner", "name": "inner", "dur_us": 13000},
        ]
        assert folded_from_spans(snapshot, records) == ["outer;inner 13"]

    def test_folded_falls_back_to_flat_names(self):
        snapshot = {
            "solo": {"count": 1, "cpu_self_s": 0.002, "cpu_total_s": 0.002,
                     "wall_s": 0.002, "rss_peak_kb": 1.0},
        }
        assert folded_from_spans(snapshot, records=None) == ["solo 2"]


class TestStackSampler:
    def test_sampler_collects_folded_stacks(self):
        with StackSampler(interval_s=0.001) as sampler:
            deadline = time.perf_counter() + 0.08
            while time.perf_counter() < deadline:
                sum(range(2000))
        assert sampler.n_samples > 0
        lines = sampler.folded()
        assert lines
        stack, count = lines[0].rsplit(" ", 1)
        assert int(count) >= 1
        assert ";" in stack or ":" in stack

    def test_stop_is_idempotent(self):
        sampler = StackSampler(interval_s=0.001).start()
        sampler.stop()
        sampler.stop()


class TestArtifact:
    def test_build_write_load_roundtrip(self, tmp_path):
        profiler = SpanProfiler()
        profiler.on_enter("s")
        profiler.on_exit("s")
        payload = build_profile(profiler, run_id="abc123")
        path = write_profile(payload, tmp_path / "profile.json")
        loaded = load_profile(path)
        assert loaded == payload
        assert loaded["run_id"] == "abc123"
        assert loaded["spans"]["s"]["count"] == 1
        assert loaded["top"][0]["span"] == "s"

    def test_build_with_no_collectors_is_empty_but_valid(self):
        payload = build_profile(None)
        assert payload["spans"] == {}
        assert payload["top"] == []
        assert payload["n_stack_samples"] == 0

    def test_load_rejects_wrong_schema(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": 42}')
        with pytest.raises(SchemaError):
            load_profile(bad)
