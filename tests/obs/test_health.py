"""Health-report composition, serialization, and the faulted-run guarantee.

The acceptance property pinned at the end: a run whose slices are starved
(injected via :mod:`repro.faults` corruption plus a degrade policy) can
never report a clean bill of health — every recorded degradation becomes a
``warn`` finding on the synthetic ``runtime`` stage.
"""

import pytest

import repro.obs as obs
from repro.analysis.base import SMALL
from repro.analysis.experiments import run_experiment
from repro.core import AutoSens, AutoSensConfig, DegradePolicy
from repro.errors import ReproError, SchemaError
from repro.faults import DEFAULT_FAULT_SPECS, FaultPlan, corrupt_jsonl
from repro.obs.health import (
    HealthReport,
    build_health_report,
    load_health_report,
    write_health_report,
)
from repro.telemetry import IngestPolicy, read_jsonl, write_jsonl
from repro.workload import owa_scenario


def _finding(stage, severity, probe="p"):
    return {"probe": probe, "stage": stage, "severity": severity,
            "message": f"{stage} is {severity}"}


class TestSeverityAlgebra:
    def test_empty_report_is_ok(self):
        report = HealthReport([])
        assert report.verdict == "ok"
        assert report.stages == {}
        assert report.exit_code == 0
        assert report.counts() == {"ok": 0, "warn": 0, "fail": 0}

    def test_stage_verdict_is_worst_finding(self):
        report = HealthReport([
            _finding("alpha", "ok"),
            _finding("alpha", "warn"),
            _finding("preference", "ok"),
        ])
        assert report.stages == {"alpha": "warn", "preference": "ok"}
        assert report.verdict == "warn"
        assert report.exit_code == 0  # warnings are advisory

    def test_any_fail_dominates_and_flips_exit_code(self):
        report = HealthReport([
            _finding("alpha", "warn"),
            _finding("locality", "fail"),
        ])
        assert report.verdict == "fail"
        assert report.exit_code == 1

    def test_worst_findings_sorted_and_stable(self):
        report = HealthReport([
            _finding("a", "ok", probe="first-ok"),
            _finding("b", "fail", probe="the-fail"),
            _finding("c", "warn", probe="the-warn"),
        ])
        worst = report.worst_findings(limit=2)
        assert [f["probe"] for f in worst] == ["the-fail", "the-warn"]


class TestBuildReport:
    def test_degradations_become_runtime_warn_findings(self):
        report = build_health_report(
            findings=[_finding("alpha", "ok")],
            degradations=[{"kind": "starved_slice", "detail": "too few rows"}],
        )
        assert report.verdict == "warn"
        assert report.stages["runtime"] == "warn"
        runtime = [f for f in report.findings if f["stage"] == "runtime"]
        assert runtime[0]["context"]["kind"] == "starved_slice"

    def test_disabled_context_builds_an_empty_clean_report(self):
        assert not obs.enabled()
        report = build_health_report()
        assert report.verdict == "ok"
        assert report.findings == []

    def test_active_context_findings_and_degradations_are_picked_up(self):
        with obs.session(enabled=True):
            obs.record_finding(_degenerate_locality_finding())
            obs.record_degradation("starved_slice", detail="injected")
            report = build_health_report()
        assert {f["stage"] for f in report.findings} == {"locality", "runtime"}
        assert report.verdict == "warn"


def _degenerate_locality_finding():
    from repro.obs.probes import probe_locality

    return probe_locality(1.0, 1.0, 1.0)[0]


class TestSerialization:
    def test_write_then_load_roundtrip(self, tmp_path):
        report = HealthReport([_finding("alpha", "warn")])
        path = write_health_report(report, tmp_path / "health.json")
        loaded = load_health_report(path)
        assert loaded.verdict == report.verdict
        assert loaded.findings == report.findings
        assert loaded.to_dict() == report.to_dict()

    def test_load_rejects_wrong_schema(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": 99, "findings": []}')
        with pytest.raises(SchemaError):
            load_health_report(bad)
        with pytest.raises(SchemaError):
            load_health_report({"schema": 1, "findings": "not-a-list"})

    def test_load_accepts_parsed_dict(self):
        payload = HealthReport([_finding("alpha", "ok")]).to_dict()
        assert load_health_report(payload).verdict == "ok"


class TestEndToEnd:
    def test_run_experiment_attaches_health_to_outcome_and_manifest(self, tmp_path):
        with obs.session(enabled=True, deterministic=True):
            outcome = run_experiment(
                "bottleneck", seed=11, scale=SMALL,
                manifest_out=tmp_path / "manifest.json")
        assert isinstance(outcome.health, dict)
        assert outcome.health["verdict"] == "ok"
        assert outcome.health["findings"]
        manifest = obs.load_manifest(tmp_path / "manifest.json")
        assert manifest["health"]["verdict"] == "ok"

    def test_faulted_run_never_reports_clean(self, tmp_path):
        """Starved slices injected via repro.faults must surface as
        warn/fail findings — the report cannot say ``ok``."""
        result = owa_scenario(
            seed=7, duration_days=1.0, n_users=30,
            candidates_per_user_day=20.0,
        ).generate()
        clean = tmp_path / "clean.jsonl"
        write_jsonl(result.logs.iter_records(), clean)
        dirty = tmp_path / "dirty.jsonl"
        specs = tuple(spec() for _, spec in sorted(DEFAULT_FAULT_SPECS.items()))
        corrupt_jsonl(clean, dirty, FaultPlan(specs=specs, seed=99))

        with obs.session(enabled=True):
            logs = read_jsonl(dirty, policy=IngestPolicy(
                mode="quarantine", max_bad_share=1.0,
                quarantine_path=tmp_path / "rejects.jsonl"))
            engine = AutoSens(AutoSensConfig(seed=5), degrade=DegradePolicy())
            try:
                engine.curves_by_action(logs)
            except ReproError:
                pass  # a fully starved sweep may refuse; degradations remain
            assert obs.current().degradations, "fault injection drew no blood"
            report = build_health_report()

        assert report.verdict in ("warn", "fail")
        bad = [f for f in report.findings
               if f["severity"] in ("warn", "fail")]
        assert bad, "a faulted run reported a clean bill of health"
        assert any(f["stage"] == "runtime" for f in bad)
