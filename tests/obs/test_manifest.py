"""Run manifests: identity, determinism, atomic write, rendering."""

import hashlib
import json

import pytest

from repro.errors import SchemaError
from repro.obs.manifest import (
    build_manifest,
    file_digest,
    load_manifest,
    manifest_rows,
    write_manifest,
)


class TestDigest:
    def test_file_digest_matches_hashlib(self, tmp_path):
        path = tmp_path / "input.jsonl"
        path.write_bytes(b"hello\n")
        assert file_digest(path) == hashlib.sha256(b"hello\n").hexdigest()


class TestBuild:
    def test_run_id_is_stable_for_the_same_logical_run(self):
        a = build_manifest("fig4", 7, config_fingerprint=("x", 1),
                           deterministic=True)
        b = build_manifest("fig4", 7, config_fingerprint=("x", 1),
                           deterministic=True)
        assert a["run_id"] == b["run_id"]
        c = build_manifest("fig4", 8, config_fingerprint=("x", 1),
                           deterministic=True)
        assert c["run_id"] != a["run_id"]

    def test_deterministic_omits_created_at(self):
        det = build_manifest("e", 0, deterministic=True)
        assert "created_at" not in det
        wall = build_manifest("e", 0, deterministic=False)
        assert "created_at" in wall

    def test_inputs_are_digested(self, tmp_path):
        path = tmp_path / "logs.jsonl"
        path.write_bytes(b"row\n")
        manifest = build_manifest("e", 0, inputs=[path], deterministic=True)
        assert manifest["inputs"][str(path)] == file_digest(path)

    def test_extra_fields_merge(self):
        manifest = build_manifest("e", 0, deterministic=True,
                                  extra={"outcome_cached": True})
        assert manifest["outcome_cached"] is True


class TestWriteLoad:
    def test_roundtrip_and_no_tmp_residue(self, tmp_path):
        manifest = build_manifest("e", 3, deterministic=True)
        out = write_manifest(manifest, tmp_path / "manifest.json")
        assert load_manifest(out) == manifest
        assert list(tmp_path.iterdir()) == [out]

    def test_two_deterministic_writes_are_byte_identical(self, tmp_path):
        a = write_manifest(build_manifest("e", 3, deterministic=True),
                           tmp_path / "a.json")
        b = write_manifest(build_manifest("e", 3, deterministic=True),
                           tmp_path / "b.json")
        assert a.read_bytes() == b.read_bytes()

    def test_load_rejects_malformed(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(SchemaError):
            load_manifest(bad)
        nope = tmp_path / "nope.json"
        nope.write_text(json.dumps({"schema": 1}))
        with pytest.raises(SchemaError):
            load_manifest(nope)


class TestRows:
    def test_rows_cover_provenance_and_degradations(self):
        manifest = build_manifest(
            "fig4", 7, deterministic=True,
            degradations=[{"kind": "starved_slice", "detail": "too few"}],
            ingest={"n_rows": 100, "n_bad": 2,
                    "quarantine_path": "/tmp/q.jsonl",
                    "reasons": {"json-decode": 2}},
        )
        rows = dict(manifest_rows(manifest))
        assert rows["experiment"] == "fig4"
        assert rows["seed"] == 7
        assert rows["degradations"] == 1
        assert rows["  starved_slice"] == "too few"
        assert rows["ingest quarantine_path"] == "/tmp/q.jsonl"
        assert rows["ingest rejected[json-decode]"] == 2
        assert "package[numpy]" in rows
