"""Estimator-health probes under degenerate inputs.

The contract pinned here: probes **never raise**. Empty latency bins, a
single-slot run, a constant-latency series where MSD/MAD is undefined —
each produces ``warn``/``fail`` findings, not exceptions. A diagnostics
layer that crashes the run it is diagnosing is worse than none.
"""

import numpy as np
import pytest

import repro.obs as obs
from repro.obs import probes
from repro.obs.probes import (
    HealthFinding,
    probe_alpha_dispersion,
    probe_bin_occupancy,
    probe_density_correlation,
    probe_latency_regime,
    probe_locality,
    probe_slot_support,
    probe_smoothing_edges,
    probe_u_coverage,
    probe_unbiased_acceptance,
)


def _severities(findings):
    return [f.severity for f in findings]


class TestHealthFinding:
    def test_rejects_unknown_severity(self):
        with pytest.raises(ValueError):
            HealthFinding(probe="p", stage="s", severity="panic", message="m")

    def test_to_dict_rounds_and_drops_absent_fields(self):
        finding = HealthFinding(
            probe="p", stage="s", severity="ok", message="m",
            value=0.123456789, context={"n": np.int64(3)})
        payload = finding.to_dict()
        assert payload["value"] == 0.123457
        assert "threshold" not in payload
        assert payload["context"]["n"] == 3  # numpy scalars JSON-safe


class TestBinOccupancy:
    def test_empty_unbiased_is_fail(self):
        findings = probe_bin_occupancy(
            np.zeros(10), np.zeros(10), min_unbiased_count=40)
        assert _severities(findings) == ["fail"]
        assert "empty" in findings[0].message

    def test_zero_length_arrays_are_fail_not_crash(self):
        findings = probe_bin_occupancy(
            np.array([]), np.array([]), min_unbiased_count=40)
        assert _severities(findings) == ["fail"]

    def test_no_stable_bin_is_fail(self):
        findings = probe_bin_occupancy(
            np.full(10, 5.0), np.full(10, 3.0), min_unbiased_count=40)
        assert _severities(findings) == ["fail"]
        assert "no latency bin" in findings[0].message

    def test_nan_counts_do_not_raise(self):
        findings = probe_bin_occupancy(
            np.full(10, np.nan), np.full(10, np.nan), min_unbiased_count=40)
        assert all(f.severity in ("warn", "fail") for f in findings)

    def test_healthy_histograms_are_ok(self):
        u = np.full(300, 100.0)
        findings = probe_bin_occupancy(u, u, min_unbiased_count=40)
        assert _severities(findings) == ["ok", "ok"]
        occupancy = findings[0]
        assert occupancy.value == 1.0
        assert occupancy.context["biased_ess_bins"] == 300.0

    def test_thin_draw_warns_on_sample_size(self):
        u = np.zeros(300)
        u[:30] = 10.0  # unstable, total mass 335 < 400
        u[0] = 45.0    # one stable bin keeps the curve defined
        findings = probe_bin_occupancy(u, u, min_unbiased_count=40)
        by_probe = {f.probe: f for f in findings}
        assert by_probe["unbiased_sample_size"].severity == "warn"


class TestUCoverage:
    def test_empty_biased_is_fail(self):
        findings = probe_u_coverage(np.zeros(10), np.ones(10) * 50, 40)
        assert _severities(findings) == ["fail"]

    def test_low_coverage_fails_mid_coverage_warns(self):
        b = np.zeros(10)
        b[0] = 70.0
        b[1] = 30.0
        u = np.zeros(10)
        u[0] = 100.0  # only bin 0 stable -> 70% covered -> warn
        assert probe_u_coverage(b, u, 40)[0].severity == "warn"
        b[0], b[1] = 30.0, 70.0  # 30% covered -> fail
        assert probe_u_coverage(b, u, 40)[0].severity == "fail"

    def test_full_coverage_is_ok(self):
        b = np.ones(10)
        u = np.full(10, 50.0)
        assert probe_u_coverage(b, u, 40)[0].severity == "ok"


class TestAlphaDispersion:
    def test_empty_matrix_is_fail(self):
        findings = probe_alpha_dispersion(
            np.empty((0, 5)), np.array([]), reference_slot=0)
        assert _severities(findings) == ["fail"]

    def test_all_nan_matrix_reports_fallback_as_informational(self):
        # No slot has >=2 valid bins: the total-count fallback carried the
        # run. That is expected at small scale, so it must not dirty the
        # verdict of an otherwise clean run.
        matrix = np.full((4, 6), np.nan)
        findings = probe_alpha_dispersion(
            matrix, np.ones(4), reference_slot=0)
        assert _severities(findings) == ["ok"]
        assert "fallback" in findings[0].message

    def test_flat_alpha_is_ok(self):
        matrix = np.tile(np.array([1.0, 1.0, 1.0, 1.0]), (3, 1))
        findings = probe_alpha_dispersion(matrix, np.ones(3), 0)
        by_probe = {f.probe: f for f in findings}
        assert by_probe["alpha_dispersion"].severity == "ok"
        assert by_probe["alpha_dispersion"].value == 0.0

    def test_wild_dispersion_warns_then_fails(self):
        warn_row = np.array([1.0, 5.0, 0.2, 3.0])  # CV ≈ 0.85
        findings = probe_alpha_dispersion(
            np.tile(warn_row, (3, 1)), np.ones(3), 0)
        assert findings[0].severity == "warn"
        fail_row = np.array([0.001, 20.0, 0.001, 0.001])  # CV ≈ 1.73
        findings = probe_alpha_dispersion(
            np.tile(fail_row, (3, 1)), np.ones(3), 0)
        assert findings[0].severity == "fail"


class TestSlotSupport:
    def test_single_slot_warns_identity_correction(self):
        findings = probe_slot_support(
            n_slots=1, n_reference_slots=3, n_used_references=1)
        assert findings[0].severity == "warn"
        assert "identity" in findings[0].message

    def test_zero_slots_warn_not_crash(self):
        findings = probe_slot_support(
            n_slots=0, n_reference_slots=0, n_used_references=0)
        assert findings[0].severity == "warn"

    def test_dropped_references_warn(self):
        findings = probe_slot_support(
            n_slots=24, n_reference_slots=3, n_used_references=1)
        by_probe = {f.probe: f for f in findings}
        assert by_probe["slot_support"].severity == "ok"
        assert by_probe["reference_slots"].severity == "warn"


class TestSmoothingEdges:
    def test_no_stable_bins_is_fail(self):
        findings = probe_smoothing_edges(np.zeros(300, dtype=bool), 101)
        assert _severities(findings) == ["fail"]

    def test_empty_mask_is_fail_not_crash(self):
        findings = probe_smoothing_edges(np.array([], dtype=bool), 101)
        assert _severities(findings) == ["fail"]

    def test_sliver_of_support_warns(self):
        mask = np.zeros(300, dtype=bool)
        mask[10:20] = True  # run of 10 < half-window 51
        findings = probe_smoothing_edges(mask, 101)
        assert _severities(findings) == ["warn"]
        assert findings[0].context["longest_stable_run"] == 10

    def test_half_window_support_is_ok(self):
        mask = np.zeros(300, dtype=bool)
        mask[0:60] = True  # 60 >= half-window 51, though < full window
        findings = probe_smoothing_edges(mask, 101)
        assert _severities(findings) == ["ok"]
        assert findings[0].context["edge_free"] is False

    def test_full_window_support_is_edge_free(self):
        mask = np.ones(300, dtype=bool)
        findings = probe_smoothing_edges(mask, 101)
        assert findings[0].severity == "ok"
        assert findings[0].context["edge_free"] is True


class TestLocality:
    def test_constant_latency_series_warns_not_raises(self):
        # MAD = 0 everywhere: the three ratios coincide, span is zero.
        findings = probe_locality(actual=1.0, shuffled=1.0, sorted_ratio=1.0)
        assert _severities(findings) == ["warn"]
        assert "degenerate" in findings[0].message

    def test_nan_ratios_warn_not_raise(self):
        findings = probe_locality(
            actual=float("nan"), shuffled=1.0, sorted_ratio=0.2)
        assert _severities(findings) == ["warn"]

    def test_none_inputs_warn_not_raise(self):
        findings = probe_locality(actual=None, shuffled=None, sorted_ratio=None)
        assert _severities(findings) == ["warn"]

    def test_no_locality_is_fail(self):
        findings = probe_locality(actual=1.05, shuffled=1.0, sorted_ratio=0.2)
        assert _severities(findings) == ["fail"]

    def test_strong_locality_is_ok(self):
        findings = probe_locality(actual=0.55, shuffled=1.0, sorted_ratio=0.3)
        assert _severities(findings) == ["ok"]
        assert findings[0].value == pytest.approx(0.642857, abs=1e-5)


class TestUnbiasedAcceptance:
    def test_healthy_draw_is_ok(self):
        findings = probe_unbiased_acceptance(1000, 1000, 1200, 1)
        assert _severities(findings) == ["ok"]
        assert findings[0].context["drawn"] == 1200

    def test_wasteful_draw_warns(self):
        findings = probe_unbiased_acceptance(1000, 1000, 4000, 2)
        assert _severities(findings) == ["warn"]
        assert findings[0].value == 0.25

    def test_shortfall_warns(self):
        findings = probe_unbiased_acceptance(700, 1000, 1200, 9)
        assert _severities(findings) == ["warn"]
        assert "fell short" in findings[0].message

    def test_empty_draw_is_fail(self):
        findings = probe_unbiased_acceptance(0, 1000, 5000, 9)
        assert _severities(findings) == ["fail"]
        assert "accepted no queries" in findings[0].message

    def test_zero_target_is_ok_not_crash(self):
        findings = probe_unbiased_acceptance(0, 0, 0, 0)
        assert _severities(findings) == ["ok"]

    def test_nan_inputs_do_not_raise(self):
        findings = probe_unbiased_acceptance(float("nan"), 100, float("nan"), 1)
        assert all(f.severity in ("warn", "fail") for f in findings)


class TestDensityCorrelation:
    def test_nan_correlation_warns(self):
        findings = probe_density_correlation(float("nan"))
        assert _severities(findings) == ["warn"]
        assert "undefined" in findings[0].message

    def test_positive_correlation_warns(self):
        assert probe_density_correlation(0.3)[0].severity == "warn"

    def test_anti_correlation_is_ok(self):
        assert probe_density_correlation(-0.4)[0].severity == "ok"


class TestLatencyRegime:
    def _matrix(self, n_slots=6, n_bins=30, median_bin=10, tail_bin=None):
        """Slots of 1000 actions centered on ``median_bin``; optionally one
        slot with 1.5% of its mass pushed out to ``tail_bin``."""
        matrix = np.zeros((n_slots, n_bins))
        matrix[:, median_bin] = 1000.0
        if tail_bin is not None:
            matrix[0, tail_bin] = 15.0
        return matrix

    def _centers(self, n_bins=30):
        return np.geomspace(50.0, 5000.0, n_bins)

    def test_uniform_slots_ok(self):
        findings = probe_latency_regime(self._matrix(), self._centers())
        assert _severities(findings) == ["ok", "ok"]
        probes_seen = {f.probe for f in findings}
        assert probes_seen == {"latency_tail_inflation", "latency_regime_shift"}

    def test_inflated_tail_warns(self):
        matrix = self._matrix(tail_bin=29)  # p99 lands ~20x the median
        findings = probe_latency_regime(matrix, self._centers())
        by_probe = {f.probe: f for f in findings}
        assert by_probe["latency_tail_inflation"].severity == "warn"

    def test_extreme_tail_fails(self):
        matrix = self._matrix(median_bin=2, tail_bin=29)  # p99 ~70x median
        findings = probe_latency_regime(matrix, self._centers())
        by_probe = {f.probe: f for f in findings}
        assert by_probe["latency_tail_inflation"].severity == "fail"

    def test_shifted_slot_median_warns(self):
        matrix = self._matrix()
        matrix[0] = 0.0
        matrix[0, 28] = 1000.0  # one slot lives two decades higher
        findings = probe_latency_regime(matrix, self._centers())
        by_probe = {f.probe: f for f in findings}
        assert by_probe["latency_regime_shift"].severity in ("warn", "fail")

    def test_custom_thresholds_tighten(self):
        matrix = self._matrix(tail_bin=14)
        loose = probe_latency_regime(matrix, self._centers())
        tight = probe_latency_regime(matrix, self._centers(),
                                     warn_tail_ratio=1.2, fail_tail_ratio=50.0)
        assert all(f.severity == "ok" for f in loose)
        by_probe = {f.probe: f for f in tight}
        assert by_probe["latency_tail_inflation"].severity == "warn"

    def test_empty_tensor_never_raises(self):
        findings = probe_latency_regime(np.zeros((0, 0)), np.array([]))
        assert _severities(findings) == ["warn"]

    def test_mismatched_bins_never_raises(self):
        findings = probe_latency_regime(np.ones((4, 5)), np.arange(7))
        assert _severities(findings) == ["warn"]

    def test_single_usable_slot_not_assessable(self):
        matrix = np.zeros((4, 10))
        matrix[2, 3] = 1000.0  # only one slot clears min_slot_count
        findings = probe_latency_regime(matrix, np.geomspace(50, 500, 10))
        assert _severities(findings) == ["ok"]
        assert "not assessable" in findings[0].message

    def test_nan_counts_never_raise(self):
        matrix = self._matrix().astype(float)
        matrix[1, :] = np.nan
        findings = probe_latency_regime(matrix, self._centers())
        assert all(f.severity in ("ok", "warn", "fail") for f in findings)


class TestProbeMissingness:
    def _streams(self, n=6000, seed=3):
        rng = np.random.default_rng(seed)
        times = np.sort(rng.uniform(0.0, 86400.0, n))
        latencies = rng.lognormal(5.5, 0.8, n)
        return times, latencies

    def test_unpaired_is_a_single_ok_not_assessable(self):
        times, latencies = self._streams()
        findings = probes.probe_missingness(times, latencies)
        assert _severities(findings) == ["ok"]
        assert "not assessable" in findings[0].message

    def test_empty_reference_warns(self):
        times, latencies = self._streams()
        findings = probes.probe_missingness(
            times, latencies,
            reference_times=np.array([]),
            reference_latencies_ms=np.array([]))
        assert _severities(findings) == ["warn"]

    def test_identical_streams_all_ok(self):
        times, latencies = self._streams()
        findings = probes.probe_missingness(
            times, latencies,
            reference_times=times, reference_latencies_ms=latencies)
        assert set(_severities(findings)) == {"ok"}
        assert {f.probe for f in findings} == {
            "missingness_depth", "missingness_informative",
            "sampling_irregularity",
        }

    def test_uniform_thinning_flags_depth_only(self):
        # Latency-blind, time-blind dropout: deep, but neither informative
        # nor irregular — the probe must not cry MNAR at random thinning.
        times, latencies = self._streams(n=12000)
        rng = np.random.default_rng(11)
        keep = rng.random(times.size) >= 0.5
        findings = probes.probe_missingness(
            times[keep], latencies[keep],
            reference_times=times, reference_latencies_ms=latencies)
        by_probe = {f.probe: f for f in findings}
        assert by_probe["missingness_depth"].severity in ("warn", "fail")
        assert by_probe["missingness_informative"].severity == "ok"
        assert by_probe["sampling_irregularity"].severity == "ok"

    def test_mnar_dropout_flags_informativeness(self):
        times, latencies = self._streams(n=12000)
        knee = np.percentile(latencies, 75.0)
        rng = np.random.default_rng(11)
        # Keep fast rows, drop most of the latency tail.
        keep = (latencies < knee) | (rng.random(times.size) >= 0.7)
        findings = probes.probe_missingness(
            times[keep], latencies[keep],
            reference_times=times, reference_latencies_ms=latencies)
        by_probe = {f.probe: f for f in findings}
        assert by_probe["missingness_informative"].severity in (
            "warn", "fail")

    def test_windowed_outage_flags_irregularity(self):
        times, latencies = self._streams(n=12000)
        # Collector off for the middle third of the span.
        lo, hi = 86400.0 / 3, 2 * 86400.0 / 3
        keep = (times < lo) | (times >= hi)
        findings = probes.probe_missingness(
            times[keep], latencies[keep],
            reference_times=times, reference_latencies_ms=latencies)
        by_probe = {f.probe: f for f in findings}
        assert by_probe["sampling_irregularity"].severity in ("warn", "fail")

    def test_duplication_never_aliases_to_mnar(self):
        # Retention above 1 is clamped: an over-represented stream is not
        # *missing* anything, so no missingness probe may flag it.
        times, latencies = self._streams()
        dup_times = np.concatenate([times, times])
        dup_lat = np.concatenate([latencies, latencies])
        order = np.argsort(dup_times, kind="stable")
        findings = probes.probe_missingness(
            dup_times[order], dup_lat[order],
            reference_times=times, reference_latencies_ms=latencies)
        assert set(_severities(findings)) == {"ok"}

    def test_never_raises_on_constant_latency(self):
        times, _ = self._streams(n=500)
        const = np.full(500, 250.0)
        findings = probes.probe_missingness(
            times, const, reference_times=times,
            reference_latencies_ms=const)
        assert all(f.severity in ("ok", "warn", "fail") for f in findings)


class TestPairedRegimeMargins:
    def test_defaults_match_recovery_constants(self):
        from repro.analysis.recovery import (
            PAIRED_SPREAD_MARGIN,
            PAIRED_TAIL_MARGIN,
        )

        margins = probes.DEFAULT_PAIRED_MARGINS
        assert margins.tail == PAIRED_TAIL_MARGIN == 1.35
        assert margins.spread == PAIRED_SPREAD_MARGIN == 1.2

    def test_sub_unity_margins_rejected(self):
        with pytest.raises(Exception):
            probes.PairedRegimeMargins(tail=0.9)

    def test_to_dict_is_json_plain(self):
        payload = probes.DEFAULT_PAIRED_MARGINS.to_dict()
        assert payload["tail"] == 1.35
        assert all(isinstance(v, float) for v in payload.values())


class TestEmit:
    def test_disabled_context_swallows_findings(self):
        probes.emit(probe_density_correlation(-0.4))
        assert obs.findings() == []

    def test_enabled_context_accumulates_and_counts(self):
        with obs.session(enabled=True):
            probes.emit(probe_density_correlation(-0.4))
            probes.emit(probe_locality(1.0, 1.0, 1.0))
            recorded = obs.findings()
            assert len(recorded) == 2
            assert recorded[0]["stage"] == "locality"
            snapshot = obs.metrics().snapshot()
            series = snapshot["autosens_health_findings_total"]["series"]
            assert sum(series.values()) == 2
