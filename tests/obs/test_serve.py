"""The obs HTTP server: endpoints, verdict codes, and bus hygiene."""

import json
import urllib.error
import urllib.request
from pathlib import Path

import pytest

import repro.obs as obs
from repro.obs.probes import HealthFinding
from repro.obs.serve import ObsServer, parse_serve_addr


class TestParseServeAddr:
    def test_host_port(self):
        assert parse_serve_addr("0.0.0.0:9100") == ("0.0.0.0", 9100)

    def test_bare_port_binds_localhost(self):
        assert parse_serve_addr("9100") == ("127.0.0.1", 9100)

    def test_port_zero_is_allowed(self):
        assert parse_serve_addr("127.0.0.1:0") == ("127.0.0.1", 0)

    @pytest.mark.parametrize("bad", ["host:abc", "host:", "", "host:70000"])
    def test_bad_specs_raise(self, bad):
        with pytest.raises(ValueError):
            parse_serve_addr(bad)


def _get(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.read().decode("utf-8")


@pytest.fixture()
def server():
    with obs.session(enabled=True, deterministic=True, run_id="serve-test"):
        srv = ObsServer("127.0.0.1", 0).start()
        try:
            yield srv
        finally:
            srv.close()


class TestEndpoints:
    def test_metrics_serves_live_prometheus_text(self, server):
        obs.inc("autosens_live_total", 2.0, outcome="hit")
        status, body = _get(server.url + "/metrics")
        assert status == 200
        assert "# TYPE autosens_live_total counter" in body
        assert 'autosens_live_total{outcome="hit"} 2' in body

    def test_healthz_is_200_while_ok_or_warn(self, server):
        status, body = _get(server.url + "/healthz")
        assert status == 200
        assert json.loads(body)["verdict"] == "ok"
        obs.record_finding(HealthFinding(
            probe="density", stage="alpha", severity="warn", message="low"))
        status, body = _get(server.url + "/healthz")
        assert status == 200
        assert json.loads(body)["verdict"] == "warn"

    def test_healthz_is_503_on_fail(self, server):
        obs.record_finding(HealthFinding(
            probe="support", stage="alpha", severity="fail", message="gone"))
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url + "/healthz")
        assert excinfo.value.code == 503
        payload = json.loads(excinfo.value.read().decode("utf-8"))
        assert payload["verdict"] == "fail"

    def test_progress_reflects_stage_events(self, server):
        obs.event("run", phase="start", run_id="serve-test")
        obs.event("stage", stage="sweep", total=4)
        obs.event("tasks", stage="sweep", done=1)
        status, body = _get(server.url + "/progress")
        assert status == 200
        snap = json.loads(body)
        assert snap["run_id"] == "serve-test"
        assert snap["stages"]["sweep"]["done"] == 1
        assert snap["stages"]["sweep"]["total"] == 4

    def test_events_tail_is_ndjson_with_since_filter(self, server):
        for i in range(5):
            obs.event("tasks", stage="s", done=1)
        status, body = _get(server.url + "/events?n=3")
        events = [json.loads(line) for line in body.splitlines()]
        assert status == 200
        assert len(events) == 3
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs)
        _, body = _get(f"{server.url}/events?since={seqs[-1]}")
        assert body == ""

    def test_spans_flow_to_the_live_stream(self, server):
        with obs.span("alpha", slot=1):
            pass
        _, body = _get(server.url + "/events?n=100")
        types = [json.loads(line)["type"] for line in body.splitlines()]
        assert "span_open" in types and "span_close" in types

    def test_unknown_route_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url + "/nope")
        assert excinfo.value.code == 404

    @pytest.mark.parametrize("route", ["/slo", "/trend"])
    def test_watch_routes_404_without_a_runs_dir(self, server, route):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url + route)
        assert excinfo.value.code == 404


class TestWatchEndpoints:
    """A server wired to a registry serves fleet SLO and trend verdicts."""

    GOLDEN = Path(__file__).parent / "golden" / "registry"

    def _server(self, runs_dir):
        return ObsServer("127.0.0.1", 0, runs_dir=str(runs_dir)).start()

    def test_slo_is_200_when_the_fleet_is_healthy(self):
        with obs.session(enabled=True, run_id="watch-clean"):
            srv = self._server(self.GOLDEN / "clean")
            try:
                status, body = _get(srv.url + "/slo")
            finally:
                srv.close()
        payload = json.loads(body)
        assert status == 200
        assert payload["kind"] == "watch-slo"
        assert payload["met"] is True
        assert payload["breaches"] == []

    def test_slo_is_503_on_a_breach_and_names_the_series(self):
        with obs.session(enabled=True, run_id="watch-stepped"):
            srv = self._server(self.GOLDEN / "stepped")
            try:
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    _get(srv.url + "/slo")
                assert excinfo.value.code == 503
                payload = json.loads(excinfo.value.read().decode("utf-8"))
            finally:
                srv.close()
        assert payload["met"] is False
        assert any(b["series"] == "span_seconds[preference_compute]"
                   for b in payload["breaches"])

    def test_trend_serves_per_series_change_points(self):
        with obs.session(enabled=True, run_id="watch-trend"):
            srv = self._server(self.GOLDEN / "stepped")
            try:
                status, body = _get(srv.url + "/trend")
            finally:
                srv.close()
        payload = json.loads(body)
        assert status == 200
        assert payload["kind"] == "watch-trend"
        moved = payload["series"]["span_seconds[preference_compute]"]
        assert moved["state"] == "stepped"
        assert moved["change_seq"] == 6

    def test_empty_registry_serves_a_trivially_met_verdict(self, tmp_path):
        runs_dir = tmp_path / "runs"
        runs_dir.mkdir()
        (runs_dir / "index.jsonl").write_text("", encoding="utf-8")
        with obs.session(enabled=True, run_id="watch-empty"):
            srv = self._server(runs_dir)
            try:
                status, body = _get(srv.url + "/slo")
            finally:
                srv.close()
        payload = json.loads(body)
        assert status == 200
        assert payload["met"] is True
        assert payload["note"] == "empty-registry"


class TestLifecycle:
    def test_start_attaches_and_close_detaches(self):
        with obs.session(enabled=True, run_id="lifecycle"):
            assert not obs.events_active()
            srv = ObsServer("127.0.0.1", 0).start()
            assert obs.events_active()
            host, port = srv.address
            assert port != 0  # ephemeral bind resolved
            srv.close()
            assert not obs.events_active()
            srv.close()  # idempotent

    def test_tracker_survives_close_for_final_persistence(self):
        with obs.session(enabled=True, run_id="persist"):
            srv = ObsServer("127.0.0.1", 0).start()
            obs.event("stage", stage="s", total=2)
            obs.event("tasks", stage="s", done=2)
            srv.close()
            srv.tracker.finish("done")
            snap = srv.tracker.snapshot()
            assert snap["state"] == "done"
            assert snap["stages"]["s"]["done"] == 2
