"""The event bus: bounded sinks, drop accounting, and the free no-sink path."""

import json

import pytest

import repro.obs as obs
from repro.obs import EVENT_TYPES, EventBus, EventSink, event_lines


class TestEventSink:
    def test_offer_and_tail(self):
        sink = EventSink(maxlen=10)
        for i in range(3):
            sink.offer({"seq": i + 1, "type": "metric"})
        assert len(sink) == 3
        assert [e["seq"] for e in sink.tail()] == [1, 2, 3]
        assert [e["seq"] for e in sink.tail(n=2)] == [2, 3]
        assert [e["seq"] for e in sink.tail(since_seq=2)] == [3]

    def test_bounded_drops_oldest_and_counts(self):
        sink = EventSink(maxlen=4)
        for i in range(7):
            sink.offer({"seq": i + 1, "type": "metric"})
        assert len(sink) == 4
        assert sink.dropped == 3
        # A live tail wants the freshest events, not the oldest.
        assert [e["seq"] for e in sink.tail()] == [4, 5, 6, 7]

    def test_drain_empties_without_touching_drop_count(self):
        sink = EventSink(maxlen=2)
        for i in range(3):
            sink.offer({"seq": i + 1})
        drained = sink.drain()
        assert len(drained) == 2
        assert len(sink) == 0
        assert sink.dropped == 1


class TestEventBus:
    def test_no_sink_publish_is_free(self):
        bus = EventBus()
        for _ in range(5):
            bus.publish("metric", metric="x", delta=1.0)
        assert not bus.active
        assert bus.published == 0
        assert bus.seq == 0
        assert bus.stats() == {"sinks": 0, "published": 0, "dropped": 0,
                               "sink_errors": 0}

    def test_publish_stamps_seq_ts_type(self):
        bus = EventBus()
        sink = bus.attach(EventSink())
        bus.publish("stage", stage="sweep", total=8)
        bus.publish("tasks", stage="sweep", done=2)
        events = sink.tail()
        assert [e["seq"] for e in events] == [1, 2]
        assert [e["type"] for e in events] == ["stage", "tasks"]
        assert all(isinstance(e["ts"], float) for e in events)
        assert events[0]["total"] == 8

    def test_detach_restores_the_free_path(self):
        bus = EventBus()
        sink = bus.attach(EventSink())
        bus.publish("run", phase="start")
        bus.detach(sink)
        assert not bus.active
        bus.publish("run", phase="done")
        assert bus.published == 1

    def test_broken_sink_is_counted_not_propagated(self):
        class Broken:
            def offer(self, event):
                raise RuntimeError("boom")

        bus = EventBus()
        bus.attach(Broken())
        good = bus.attach(EventSink())
        bus.publish("finding", probe="p")
        assert bus.sink_errors == 1
        assert len(good.tail()) == 1

    def test_dropped_sums_over_sinks(self):
        bus = EventBus()
        bus.attach(EventSink(maxlen=1))
        bus.attach(EventSink(maxlen=2))
        for _ in range(3):
            bus.publish("metric", metric="x")
        assert bus.dropped() == (3 - 1) + (3 - 2)


class TestEventLines:
    def test_lines_are_sorted_compact_ndjson_with_schema(self):
        lines = list(event_lines([
            {"seq": 1, "ts": 1.0, "type": "run", "phase": "start"},
        ]))
        assert len(lines) == 1
        payload = json.loads(lines[0])
        assert payload["schema"] == 1
        assert list(payload) == sorted(payload)
        assert "\n" not in lines[0]

    def test_unjsonable_payloads_are_coerced(self):
        lines = list(event_lines([{"seq": 1, "type": "metric",
                                   "value": {1, 2}}]))
        json.loads(lines[0])  # must not raise


class TestFacade:
    def test_disabled_context_publishes_nothing(self):
        assert not obs.events_active()
        obs.event("run", phase="start")
        assert obs.event_bus().published == 0

    def test_enabled_without_sink_stays_inert(self):
        with obs.session(enabled=True):
            assert not obs.events_active()
            obs.event("run", phase="start")
            obs.inc("autosens_x_total")
            assert obs.event_bus().published == 0

    def test_attach_wires_the_tracer_listener(self):
        with obs.session(enabled=True, deterministic=True) as ctx:
            sink = obs.attach_sink(EventSink())
            assert obs.events_active()
            assert ctx.tracer.listener is ctx.bus
            with obs.span("alpha", slot=3):
                pass
            obs.detach_sink(sink)
            assert ctx.tracer.listener is None
            types = [e["type"] for e in sink.tail()]
            assert types == ["span_open", "span_close"]
            close = sink.tail()[-1]
            assert close["name"] == "alpha"
            assert close["attrs"] == {"slot": 3}
            assert close["dur_us"] >= 0

    def test_metric_finding_degradation_events_flow(self):
        from repro.obs.probes import HealthFinding

        with obs.session(enabled=True):
            sink = obs.attach_sink(EventSink())
            obs.inc("autosens_x_total", 2.0, outcome="hit")
            obs.observe("autosens_x_s", 0.5)
            obs.set_gauge("autosens_x_g", 7.0)
            obs.record_degradation("starved_slice", slice="a")
            obs.record_finding(HealthFinding(
                probe="density", stage="alpha", severity="warn",
                message="low"))
            types = [e["type"] for e in sink.tail()]
            assert types == ["metric", "metric", "metric", "degradation",
                            "finding"]
            kinds = [e.get("kind") for e in sink.tail() if e["type"] == "metric"]
            assert kinds == ["counter", "histogram", "gauge"]
            assert all(t in EVENT_TYPES for t in types)

    def test_all_published_types_are_in_the_vocabulary(self):
        # The closed vocabulary is what validate_obs --events checks against.
        assert set(EVENT_TYPES) == {
            "span_open", "span_close", "metric", "finding", "degradation",
            "supervisor", "stage", "tasks", "run", "slo"}


class TestNoSinkIdentity:
    """With the bus compiled in but unattached, artifacts must not move."""

    def _run_workload(self):
        from repro.parallel import SerialExecutor

        executor = SerialExecutor()
        with obs.span("sweep"):
            out = executor.map_ordered(_square, [1, 2, 3])
        obs.inc("autosens_sweep_total", 3.0)
        return out

    def test_sink_attached_run_matches_unattached_run(self):
        with obs.session(enabled=True, deterministic=True, run_id="r"):
            baseline_out = self._run_workload()
            baseline_records = obs.trace_records()
            baseline_metrics = obs.metrics().snapshot()
        with obs.session(enabled=True, deterministic=True, run_id="r"):
            sink = obs.attach_sink(EventSink())
            live_out = self._run_workload()
            live_records = obs.trace_records()
            live_metrics = obs.metrics().snapshot()
            assert sink.tail()  # the live stream did observe the run
        assert live_out == baseline_out
        assert live_records == baseline_records
        assert live_metrics == baseline_metrics

    def test_slow_sink_drops_are_counted_not_blocking(self):
        with obs.session(enabled=True, deterministic=True):
            sink = obs.attach_sink(EventSink(maxlen=4))
            for _ in range(6):
                with obs.span("alpha"):
                    pass
            # 12 span events through a 4-slot ring: the run never stalled,
            # the loss is explicit.
            assert sink.dropped == 8
            assert obs.event_bus().stats()["dropped"] == 8


def _square(x):
    return x * x
