"""Tracer semantics: nesting, deterministic identity, exporters (golden)."""

from pathlib import Path

import pytest

from repro.obs.trace import (
    DISABLED_TRACER,
    NOOP_SPAN,
    Tracer,
    chrome_trace_events,
    span_identity,
    trace_jsonl_lines,
    write_chrome_trace,
    write_trace_jsonl,
)

GOLDEN = Path(__file__).parent / "golden"


def sample_records():
    """A tiny fixed trace on the deterministic clock (the golden workload)."""
    tracer = Tracer(trace_id="golden", deterministic=True)
    with tracer.span("experiment", key="experiment:golden:0",
                     experiment="golden", seed=0):
        with tracer.span("sweep", n_tasks=2):
            with tracer.span("task", key="f[0]", task="f", index=0):
                pass
            with tracer.span("task", key="f[1]", task="f", index=1):
                pass
    return tracer.finished()


class TestNesting:
    def test_parent_and_path_follow_runtime_structure(self):
        tracer = Tracer(trace_id="t", deterministic=True)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.path == "/outer/inner"
        records = tracer.finished()
        assert [r["name"] for r in records] == ["inner", "outer"]
        assert records[1]["parent"] is None

    def test_durations_monotonic_on_deterministic_clock(self):
        tracer = Tracer(trace_id="t", deterministic=True)
        with tracer.span("a"):
            pass
        (record,) = tracer.finished()
        assert record["dur_us"] > 0

    def test_exception_records_error_attr_and_propagates(self):
        tracer = Tracer(trace_id="t", deterministic=True)
        with pytest.raises(ValueError):
            with tracer.span("bad"):
                raise ValueError("boom")
        (record,) = tracer.finished()
        assert record["attrs"]["error"] == "ValueError"


class TestIdentity:
    def test_keyed_id_is_pure_function_of_identity(self):
        expected = span_identity("run", "task", "f[3]")
        tracer = Tracer(trace_id="run", deterministic=True)
        with tracer.span("wrapper"):
            with tracer.span("task", key="f[3]") as span:
                assert span.span_id == expected
        # Same key, different nesting and a different tracer instance:
        other = Tracer(trace_id="run", namespace="run/chunk2",
                       deterministic=True, tid=3)
        with other.span("task", key="f[3]") as span:
            assert span.span_id == expected

    def test_path_ids_count_occurrences(self):
        tracer = Tracer(trace_id="run", deterministic=True)
        ids = []
        for _ in range(2):
            with tracer.span("stage") as span:
                ids.append(span.span_id)
        assert ids[0] != ids[1]
        # A fresh tracer with the same namespace reproduces both ids.
        again = Tracer(trace_id="run", deterministic=True)
        for expected in ids:
            with again.span("stage") as span:
                assert span.span_id == expected

    def test_namespace_separates_path_ids(self):
        a = Tracer(trace_id="run", namespace="run/chunk0", deterministic=True)
        b = Tracer(trace_id="run", namespace="run/chunk2", deterministic=True)
        with a.span("task") as sa:
            pass
        with b.span("task") as sb:
            pass
        assert sa.span_id != sb.span_id


class TestAdopt:
    def test_adopt_reparents_roots_and_restamps_tid(self):
        parent = Tracer(trace_id="run", deterministic=True)
        with parent.span("pool_map") as pool:
            pool_id = pool.span_id
        worker = Tracer(trace_id="run", namespace="run/chunk0",
                        deterministic=True)
        with worker.span("task", key="f[0]"):
            pass
        parent.adopt(worker.finished(), parent_id=pool_id, tid=5)
        adopted = parent.finished()[-1]
        assert adopted["parent"] == pool_id
        assert adopted["tid"] == 5
        assert adopted["id"] == span_identity("run", "task", "f[0]")


class TestDisabled:
    def test_disabled_tracer_returns_the_noop_singleton(self):
        assert DISABLED_TRACER.span("anything", key="k", x=1) is NOOP_SPAN
        assert DISABLED_TRACER.finished() == []


class TestExporters:
    def test_chrome_trace_matches_golden(self, tmp_path):
        out = tmp_path / "trace.json"
        n = write_chrome_trace(sample_records(), out, trace_id="golden")
        assert n == 4
        assert out.read_bytes() == (GOLDEN / "trace_chrome.json").read_bytes()

    def test_jsonl_matches_golden(self, tmp_path):
        out = tmp_path / "trace.jsonl"
        n = write_trace_jsonl(sample_records(), out)
        assert n == 4
        assert out.read_bytes() == (GOLDEN / "trace_spans.jsonl").read_bytes()

    def test_two_deterministic_runs_are_byte_identical(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        write_chrome_trace(sample_records(), a, trace_id="golden")
        write_chrome_trace(sample_records(), b, trace_id="golden")
        assert a.read_bytes() == b.read_bytes()

    def test_events_carry_span_and_parent_ids(self):
        events = chrome_trace_events(sample_records())
        by_name = {e["name"]: e for e in events}
        assert by_name["sweep"]["args"]["parent_id"] == \
            by_name["experiment"]["args"]["span_id"]
        assert all(e["ph"] == "X" and e["cat"] == "autosens" for e in events)

    def test_exotic_attrs_become_repr(self):
        tracer = Tracer(trace_id="t", deterministic=True)
        with tracer.span("s", obj=object(), ok=1, text="x"):
            pass
        (line,) = trace_jsonl_lines(tracer.finished())
        assert '"ok":1' in line and '"text":"x"' in line
        assert "object object" in line  # repr() fallback
