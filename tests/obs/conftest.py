"""Shared fixtures for the observability tests."""

import pytest

import repro.obs as obs


@pytest.fixture(autouse=True)
def _reset_obs_state():
    """Never leak an enabled context (or its metrics) into another test."""
    yield
    obs.disable()
