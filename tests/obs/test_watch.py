"""Fleet watchtower: baselines, change-point drift, SLOs, the watch gate."""

import json
from pathlib import Path

import pytest

import repro.obs as obs
from repro.cli.main import main
from repro.obs import EventSink
from repro.obs.registry import RunRegistry
from repro.obs.watch import (
    DEFAULT_SLOS,
    WATCH_SCHEMA,
    WatchConfigError,
    build_watch_report,
    collect_series,
    detect_change_point,
    evaluate_slos,
    load_slo_config,
    render_watch,
    robust_baseline,
    watch_exit_code,
    write_watch_artifact,
)
from repro.obs.watch import _match_series

GOLDEN = Path(__file__).parent / "golden" / "registry"
CLEAN = GOLDEN / "clean"
STEPPED = GOLDEN / "stepped"


def _points(values, start_seq=1):
    return [(start_seq + i, v) for i, v in enumerate(values)]


class TestChangePointDetector:
    def test_jittery_but_flat_series_is_stable(self):
        values = [2.0 + 0.02 * ((-1) ** i) * (1 + i % 3) for i in range(12)]
        assert detect_change_point(_points(values))["state"] == "stable"

    def test_step_is_detected_and_attributed_to_the_first_moved_run(self):
        values = [2.0, 2.02, 1.98, 2.01, 1.99, 3.2, 3.22, 3.18]
        result = detect_change_point(_points(values))
        assert result["state"] == "stepped"
        assert result["change_seq"] == 6  # the first run of the new regime
        assert result["direction"] == "up"
        assert result["delta"] == pytest.approx(1.2, abs=0.05)

    def test_downward_step_carries_direction_down(self):
        values = [3.0, 3.01, 2.99, 3.02, 2.98, 1.5, 1.51, 1.49]
        result = detect_change_point(_points(values))
        assert result["state"] == "stepped"
        assert result["direction"] == "down"

    def test_steady_ramp_is_trending_not_stepped(self):
        values = [1.0 + 0.15 * i + 0.005 * ((-1) ** i) for i in range(12)]
        result = detect_change_point(_points(values))
        assert result["state"] == "trending"
        assert result["direction"] == "up"
        assert result["slope"] == pytest.approx(0.15, abs=0.02)

    def test_constant_series_is_stable_without_dividing_by_zero(self):
        result = detect_change_point(_points([7.0] * 10))
        assert result["state"] == "stable"

    def test_short_history_abstains(self):
        result = detect_change_point(_points([1.0, 9.0, 1.0, 9.0]))
        assert result["state"] == "stable"
        assert result["note"] == "insufficient-history"


class TestRobustBaseline:
    def test_baseline_reports_center_and_envelope(self):
        baseline = robust_baseline(_points([2.0, 2.1, 1.9, 2.0, 2.05]))
        assert baseline["n"] == 5
        assert baseline["last"] == 2.05
        assert baseline["last_seq"] == 5
        assert baseline["lo"] <= baseline["median"] <= baseline["hi"]
        assert baseline["within_envelope"] is True

    def test_one_outlier_cannot_widen_its_own_envelope(self):
        # MAD of 9 tight points + 1 huge one stays tight, so the outlier
        # itself lands outside the band it failed to stretch.
        baseline = robust_baseline(_points([2.0] * 6 + [2.01, 1.99, 2.0, 50.0]))
        assert baseline["within_envelope"] is False

    def test_identical_history_collapses_in_envelope(self):
        baseline = robust_baseline(_points([3.0] * 8))
        assert baseline["mad"] == 0.0
        assert baseline["within_envelope"] is True

    def test_empty_series_reports_n_zero(self):
        assert robust_baseline([]) == {"n": 0}


class TestSeriesMatching:
    def test_brackets_in_series_names_are_literal(self):
        # fnmatch alone would read [*] as a character class and match
        # nothing; the span SLOs depend on it being literal.
        assert _match_series("span_seconds[preference_compute]",
                             "span_seconds[*]")
        assert _match_series("span_share[ingest]", "span_share[*]")
        assert not _match_series("span_seconds[x]", "span_share[*]")

    def test_plain_globs_still_work(self):
        assert _match_series("curve.mean_nlp", "curve.*")
        assert not _match_series("wall_s", "curve.*")


class TestSloConfig:
    def test_none_yields_the_default_fleet_slos(self):
        slos = load_slo_config(None)
        assert [s["name"] for s in slos] == [s["name"] for s in DEFAULT_SLOS]

    def test_toml_slo_tables_load(self, tmp_path):
        path = tmp_path / "slo.toml"
        path.write_text(
            '[[slo]]\nname = "wall"\nseries = "wall_s"\n'
            'objective = "max"\nthreshold = 10.0\nwindow = 4\n'
            'burn_rate = 0.25\n', encoding="utf-8")
        slos = load_slo_config(path)
        assert slos == [{"name": "wall", "series": "wall_s",
                         "objective": "max", "threshold": 10.0,
                         "window": 4, "burn_rate": 0.25}]

    def test_json_config_loads_with_defaults_filled(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps({"slo": [
            {"name": "s", "series": "wall_s", "objective": "stable"}]}),
            encoding="utf-8")
        slos = load_slo_config(path)
        assert slos[0]["window"] == 8
        assert slos[0]["threshold"] is None

    @pytest.mark.parametrize("spec", [
        {"series": "x", "objective": "max", "threshold": 1.0},  # no name
        {"name": "a", "objective": "max", "threshold": 1.0},    # no series
        {"name": "a", "series": "x", "objective": "median"},    # bad objective
        {"name": "a", "series": "x", "objective": "max"},       # no threshold
        {"name": "a", "series": "x", "objective": "stable", "window": 1},
        {"name": "a", "series": "x", "objective": "stable", "burn_rate": 2.0},
        {"name": "a", "series": "x", "objective": "stable", "sev": "high"},
    ])
    def test_schema_violations_raise(self, spec):
        with pytest.raises(WatchConfigError):
            load_slo_config({"slo": [spec]})

    def test_duplicate_names_raise(self):
        spec = {"name": "dup", "series": "x", "objective": "stable"}
        with pytest.raises(WatchConfigError, match="duplicate"):
            load_slo_config({"slo": [dict(spec), dict(spec)]})

    def test_empty_config_raises(self):
        with pytest.raises(WatchConfigError):
            load_slo_config({"slo": []})


class TestEvaluateSlos:
    def test_burn_rate_gates_on_share_of_breaching_runs(self):
        slos = load_slo_config({"slo": [
            {"name": "wall", "series": "wall_s", "objective": "max",
             "threshold": 2.0, "window": 4, "burn_rate": 0.25}]})
        # 1 of the last 4 runs over threshold: burn 0.25, exactly allowed.
        ok = evaluate_slos(slos, {"wall_s": _points([1.0, 1.0, 3.0, 1.0, 1.0])})
        assert ok["met"] is True
        # 2 of 4 over: burn 0.5 > 0.25 allowed.
        bad = evaluate_slos(slos, {"wall_s": _points([1.0, 3.0, 3.0, 1.0, 1.0])})
        assert bad["met"] is False
        detail = bad["slos"][0]["series"][0]
        assert detail["observed_burn_rate"] == 0.5
        assert detail["breaching_seqs"] == [2, 3]

    def test_stable_objective_breaches_only_on_upward_movement(self):
        slos = load_slo_config({"slo": [
            {"name": "spans", "series": "span_seconds[*]",
             "objective": "stable", "window": 16}]})
        up = {"span_seconds[a]": _points(
            [2.0, 2.02, 1.98, 2.01, 1.99, 3.2, 3.22, 3.18])}
        down = {"span_seconds[a]": _points(
            [3.0, 3.01, 2.99, 3.02, 2.98, 1.5, 1.51, 1.49])}
        assert evaluate_slos(slos, up)["met"] is False
        assert evaluate_slos(slos, down)["met"] is True  # an improvement

    def test_pattern_matching_nothing_is_met_with_no_data(self):
        slos = load_slo_config({"slo": [
            {"name": "ghost", "series": "nonexistent.*",
             "objective": "stable"}]})
        report = evaluate_slos(slos, {"wall_s": _points([1.0, 1.0])})
        assert report["met"] is True
        assert report["slos"][0]["note"] == "no-data"

    def test_evaluation_publishes_typed_slo_events(self):
        slos = load_slo_config({"slo": [
            {"name": "wall", "series": "wall_s", "objective": "max",
             "threshold": 0.5, "window": 4}]})
        with obs.session(enabled=True):
            sink = obs.attach_sink(EventSink())
            evaluate_slos(slos, {"wall_s": _points([1.0, 1.0])})
            events = [e for e in sink.tail() if e["type"] == "slo"]
        assert len(events) == 1
        assert events[0]["slo"] == "wall"
        assert events[0]["met"] is False
        assert events[0]["breaching"] == ["wall_s"]


class TestFixtureRegistries:
    """The committed clean/stepped registries drive the CI gate."""

    def test_clean_registry_meets_every_slo(self):
        report = build_watch_report(RunRegistry(CLEAN))
        assert report["n_runs"] == 8
        assert report["slo"]["met"] is True
        assert watch_exit_code(report) == 0
        trends = report["trend"]["series"]
        assert all(t["state"] == "stable" for t in trends.values())

    def test_stepped_registry_names_the_series_and_the_run(self):
        report = build_watch_report(RunRegistry(STEPPED))
        assert watch_exit_code(report) == 1
        breaches = report["slo"]["breaches"]
        assert any(
            b["series"] == "span_seconds[preference_compute]"
            and b["state"] == "stepped" and b["change_seq"] == 6
            for b in breaches)

    def test_collect_series_covers_spans_health_and_ingest(self):
        series = collect_series(RunRegistry(CLEAN))
        names = set(series)
        assert {"wall_s", "health.fail", "health.warn",
                "ingest.reject_rate",
                "span_seconds[preference_compute]",
                "span_share[preference_compute]"} <= names
        assert all(len(points) == 8 for points in series.values())

    def test_report_is_byte_identical_across_executors(self, tmp_path):
        registry = RunRegistry(CLEAN)
        blobs = {}
        for tag, executor in (("serial-1", None), ("serial-2", "serial"),
                              ("process", "process")):
            report = build_watch_report(registry, executor=executor)
            out = tmp_path / tag
            for name in ("baseline", "trend", "slo"):
                write_watch_artifact(report[name], out / f"{name}.json")
            blobs[tag] = {name: (out / f"{name}.json").read_bytes()
                          for name in ("baseline", "trend", "slo")}
        assert blobs["serial-1"] == blobs["serial-2"] == blobs["process"]

    def test_artifacts_carry_schema_and_kind(self):
        report = build_watch_report(RunRegistry(CLEAN))
        assert report["baseline"]["schema"] == WATCH_SCHEMA
        assert report["baseline"]["kind"] == "watch-baseline"
        assert report["trend"]["kind"] == "watch-trend"
        assert report["slo"]["kind"] == "watch-slo"

    def test_empty_registry_raises_config_error(self, tmp_path):
        registry = RunRegistry(tmp_path / "runs")
        registry.index_path.parent.mkdir(parents=True, exist_ok=True)
        registry.index_path.write_text("", encoding="utf-8")
        with pytest.raises(WatchConfigError, match="no recorded runs"):
            build_watch_report(registry)


class TestWatchCli:
    def test_check_gate_passes_on_the_clean_fixture(self, capsys):
        assert main(["watch", str(CLEAN), "--check"]) == 0
        out = capsys.readouterr().out
        assert "7/7 SLOs met" in out
        assert "all" in out and "stable" in out

    def test_check_gate_fails_loudly_on_the_stepped_fixture(self, capsys):
        assert main(["watch", str(STEPPED), "--check"]) == 1
        out = capsys.readouterr().out
        assert "BREACH" in out
        assert "span_seconds[preference_compute]" in out
        assert "seq 6" in out

    def test_without_check_breaches_report_but_exit_zero(self, capsys):
        assert main(["watch", str(STEPPED)]) == 0
        assert "BREACH" in capsys.readouterr().out

    def test_out_dir_writes_the_three_artifacts(self, tmp_path, capsys):
        out = tmp_path / "artifacts"
        assert main(["watch", str(CLEAN), "--out-dir", str(out)]) == 0
        for name in ("baseline", "trend", "slo"):
            payload = json.loads((out / f"{name}.json").read_text())
            assert payload["schema"] == WATCH_SCHEMA
            assert payload["kind"] == f"watch-{name}"

    def test_follow_with_max_polls_terminates(self, capsys):
        assert main(["watch", str(CLEAN), "--check", "--follow",
                     "--interval", "0.1", "--max-polls", "2"]) == 0

    def test_missing_registry_is_a_config_error(self, tmp_path, capsys):
        assert main(["watch", str(tmp_path / "nope"), "--check"]) == 2
        assert "index.jsonl" in capsys.readouterr().err

    def test_malformed_slo_config_is_a_schema_error(self, tmp_path, capsys):
        bad = tmp_path / "slo.toml"
        bad.write_text('[[slo]]\nname = "x"\n', encoding="utf-8")
        assert main(["watch", str(CLEAN), "--slo", str(bad)]) == 3

    def test_custom_slo_file_drives_the_gate(self, tmp_path, capsys):
        # A wall-time cap no fixture run can meet: every run breaches.
        strict = tmp_path / "slo.toml"
        strict.write_text(
            '[[slo]]\nname = "impossible-wall"\nseries = "wall_s"\n'
            'objective = "max"\nthreshold = 0.001\nwindow = 8\n',
            encoding="utf-8")
        assert main(["watch", str(CLEAN), "--slo", str(strict),
                     "--check"]) == 1
        assert "impossible-wall" in capsys.readouterr().out


class TestTopManifestFallback:
    def test_top_degrades_to_a_manifest_only_summary(self, capsys):
        run_dir = sorted(p for p in CLEAN.iterdir() if p.is_dir())[0]
        assert not (run_dir / "progress.json").exists()
        assert main(["top", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "manifest-only summary" in out
        assert "preference_compute" in out

    def test_top_on_an_empty_dir_is_a_schema_error(self, tmp_path, capsys):
        assert main(["top", str(tmp_path)]) == 3
        assert "manifest.json" in capsys.readouterr().err


class TestRendering:
    def test_render_names_drifted_series_inline(self):
        report = build_watch_report(RunRegistry(STEPPED))
        text = render_watch(report)
        assert "drift:" in text
        assert "slos:" in text
        assert "span_seconds[preference_compute]: stepped up at seq 6" in text
