"""Structured logger: formats, thresholds, binding, run-id stamping."""

import io
import json

import repro.obs as obs
from repro.obs.log import format_kv, get_logger


class TestFormat:
    def test_kv_line_shape(self):
        line = format_kv("info", "repro.core", "sweep done",
                         {"n": 12, "path": "a/b.jsonl", "msg": "two words"})
        assert line == ('level=info logger=repro.core event="sweep done" '
                        'n=12 path=a/b.jsonl msg="two words"')

    def test_quoting_rules(self):
        line = format_kv("warning", "l", "e",
                         {"flag": True, "none": None, "ratio": 0.25})
        assert "flag=True" in line
        assert "none=None" in line
        assert "ratio=0.25" in line


class TestThreshold:
    def test_disabled_context_emits_nothing(self, capsys):
        # Default context is disabled; the logger checks it at call time.
        get_logger("t").error("should not appear")
        captured = capsys.readouterr()
        assert captured.out == "" and captured.err == ""

    def test_level_filtering(self):
        stream = io.StringIO()
        with obs.session(enabled=True, level="warning", log_stream=stream):
            log = get_logger("t")
            log.debug("hidden")
            log.info("hidden")
            log.warning("kept")
            log.error("kept too")
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert "level=warning" in lines[0]
        assert "level=error" in lines[1]


class TestBinding:
    def test_bound_fields_ride_along_and_parent_is_untouched(self):
        stream = io.StringIO()
        with obs.session(enabled=True, level="info", log_stream=stream):
            parent = get_logger("t")
            child = parent.bind(source="x.jsonl")
            child.info("read", rows=5)
            parent.info("plain")
        first, second = stream.getvalue().splitlines()
        assert "source=x.jsonl" in first and "rows=5" in first
        assert "source" not in second

    def test_run_id_stamped_as_default(self):
        stream = io.StringIO()
        with obs.session(enabled=True, level="info", log_stream=stream,
                         run_id="run7"):
            get_logger("t").info("evt")
            get_logger("t").info("evt", run_id="explicit")
        first, second = stream.getvalue().splitlines()
        assert "run_id=run7" in first
        assert "run_id=explicit" in second


class TestJsonLines:
    def test_json_mode_is_parseable_and_key_sorted(self):
        stream = io.StringIO()
        with obs.session(enabled=True, level="info", log_stream=stream,
                         log_json=True, run_id="r"):
            get_logger("t").info("evt", b=2, a=1)
        (line,) = stream.getvalue().splitlines()
        payload = json.loads(line)
        assert payload == {"level": "info", "logger": "t", "event": "evt",
                           "a": 1, "b": 2, "run_id": "r"}
        assert list(payload) == sorted(payload)
