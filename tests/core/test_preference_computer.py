"""Tests for the B/U -> NLP transform and result averaging."""

import numpy as np
import pytest

from repro.errors import ConfigError, InsufficientDataError
from repro.core.preference import PreferenceComputer, average_results
from repro.stats.histogram import Histogram1D, HistogramBins


def _histogram(bins, counts):
    hist = Histogram1D(bins)
    hist.add_counts(np.asarray(counts, dtype=float))
    return hist


@pytest.fixture()
def bins():
    return HistogramBins(0.0, 600.0, 100.0)  # 6 coarse bins for testing


class TestCompute:
    def test_flat_ratio_gives_flat_nlp(self, bins):
        biased = _histogram(bins, [100, 200, 300, 200, 100, 50])
        unbiased = _histogram(bins, [100, 200, 300, 200, 100, 50])
        computer = PreferenceComputer(smoothing_window=3, smoothing_degree=1,
                                      reference_ms=250.0, min_unbiased_count=10)
        result = computer.compute(biased, unbiased)
        valid = ~np.isnan(result.nlp)
        assert np.allclose(result.nlp[valid], 1.0, atol=1e-6)

    def test_declining_ratio_recovered(self, bins):
        unbiased = _histogram(bins, [1000] * 6)
        biased = _histogram(bins, [1200, 1100, 1000, 900, 800, 700])
        computer = PreferenceComputer(smoothing_window=3, smoothing_degree=1,
                                      reference_ms=250.0, min_unbiased_count=10)
        result = computer.compute(biased, unbiased)
        assert result.nlp[0] > result.nlp[5]
        assert np.isclose(result.nlp[2], 1.0, atol=0.05)

    def test_reference_normalization(self, bins):
        """A linear ratio passes through degree-1 SG exactly, so the NLP is
        the raw ratio divided by its value at the reference bin."""
        unbiased = _histogram(bins, [1000] * 6)
        biased = _histogram(bins, [1200, 1100, 1000, 900, 800, 700])
        computer = PreferenceComputer(smoothing_window=3, smoothing_degree=1,
                                      reference_ms=250.0, min_unbiased_count=10)
        result = computer.compute(biased, unbiased)
        assert np.isclose(result.nlp[2], 1.0)
        assert np.isclose(result.nlp[0], 1.2)
        assert np.isclose(result.nlp[5], 0.7)

    def test_sparse_bins_are_nan(self, bins):
        unbiased = _histogram(bins, [1000, 1000, 1000, 1000, 5, 0])
        biased = _histogram(bins, [100] * 6)
        computer = PreferenceComputer(smoothing_window=3, smoothing_degree=1,
                                      reference_ms=150.0, min_unbiased_count=10)
        result = computer.compute(biased, unbiased)
        assert np.isnan(result.nlp[4])
        assert np.isnan(result.nlp[5])

    def test_all_sparse_raises(self, bins):
        unbiased = _histogram(bins, [1] * 6)
        biased = _histogram(bins, [1] * 6)
        computer = PreferenceComputer(min_unbiased_count=100)
        with pytest.raises(InsufficientDataError):
            computer.compute(biased, unbiased)

    def test_mismatched_grids_rejected(self, bins):
        other = HistogramBins(0.0, 600.0, 200.0)
        computer = PreferenceComputer()
        with pytest.raises(ConfigError):
            computer.compute(_histogram(bins, [1] * 6), _histogram(other, [1] * 3))

    def test_reference_outside_grid_rejected(self, bins):
        computer = PreferenceComputer(reference_ms=10_000.0)
        with pytest.raises(ConfigError):
            computer.compute(_histogram(bins, [1] * 6), _histogram(bins, [1] * 6))

    def test_reference_in_sparse_bin_falls_back(self, bins):
        # reference bin (250 -> index 2) has no unbiased mass; the nearest
        # valid bin is used instead of crashing.
        unbiased = _histogram(bins, [1000, 1000, 0, 1000, 1000, 1000])
        biased = _histogram(bins, [100] * 6)
        computer = PreferenceComputer(smoothing_window=3, smoothing_degree=0,
                                      reference_ms=250.0, min_unbiased_count=10)
        result = computer.compute(biased, unbiased)
        assert np.nansum(result.nlp) > 0

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            PreferenceComputer(smoothing_window=4)
        with pytest.raises(ConfigError):
            PreferenceComputer(reference_ms=-5.0)


class TestAverageResults:
    def _result(self, bins, scale):
        unbiased = _histogram(bins, [1000] * 6)
        biased = _histogram(bins, list(np.array([1200, 1100, 1000, 900, 800, 700]) * scale))
        computer = PreferenceComputer(smoothing_window=3, smoothing_degree=1,
                                      reference_ms=250.0, min_unbiased_count=10)
        return computer.compute(biased, unbiased)

    def test_average_of_identical_is_identity(self, bins):
        a = self._result(bins, 1.0)
        b = self._result(bins, 1.0)
        merged = average_results([a, b])
        valid = ~np.isnan(a.nlp)
        assert np.allclose(merged.nlp[valid], a.nlp[valid])

    def test_scale_invariance_of_nlp(self, bins):
        """NLP is normalized, so scaling raw counts changes nothing."""
        a = self._result(bins, 1.0)
        b = self._result(bins, 7.0)
        valid = ~np.isnan(a.nlp)
        assert np.allclose(a.nlp[valid], b.nlp[valid], atol=1e-9)

    def test_metadata_counts_inputs(self, bins):
        merged = average_results([self._result(bins, 1.0)] * 3)
        assert merged.metadata["averaged_over"] == 3

    def test_empty_rejected(self):
        with pytest.raises(InsufficientDataError):
            average_results([])

    def test_mixed_grids_rejected(self, bins):
        a = self._result(bins, 1.0)
        other_bins = HistogramBins(0.0, 600.0, 200.0)
        unbiased = _histogram(other_bins, [1000] * 3)
        computer = PreferenceComputer(smoothing_window=3, smoothing_degree=1,
                                      reference_ms=250.0, min_unbiased_count=10)
        b = computer.compute(unbiased, unbiased)
        with pytest.raises(ConfigError):
            average_results([a, b])
