"""Equivalence guarantees of the tensorized/cached/parallel fast paths.

The refactor's contract: the count tensor, the per-reference contraction,
the slice cache and the executor backends are *pure plumbing* — every fast
path must reproduce the reference path numerically (bit-identically where
the accumulation order is unchanged).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.perf import (
    _legacy_corrected_histograms,
    _legacy_period_slots,
    _legacy_slotted_counts,
)
from repro.core import AutoSens, AutoSensConfig
from repro.core.alpha import (
    alpha_from_counts,
    corrected_histograms,
    corrected_histograms_from_counts,
    slot_of_times,
    slotted_counts,
)
from repro.errors import ConfigError
from repro.parallel import ProcessExecutor
from repro.stats.histogram import latency_bins

BINS = latency_bins(3000.0, 10.0)
ESTIMATORS = ("sampling", "voronoi")


def _counts_and_alpha(logs, estimator, seed=5):
    counts = slotted_counts(
        logs, BINS, n_unbiased_samples=2 * len(logs), rng=seed, estimator=estimator
    )
    return counts, alpha_from_counts(counts)


def _assert_curves_identical(result_a, result_b):
    assert np.array_equal(result_a.nlp, result_b.nlp, equal_nan=True)
    assert np.array_equal(result_a.raw_ratio, result_b.raw_ratio, equal_nan=True)
    assert result_a.n_actions == result_b.n_actions


class TestCountTensor:
    def test_voronoi_matches_per_slot_loops_bitwise(self, owa_logs):
        """Same seed → the fused-bincount tensor equals the masked loops."""
        new = slotted_counts(
            owa_logs, BINS, n_unbiased_samples=len(owa_logs), rng=3,
            estimator="voronoi",
        )
        old = _legacy_slotted_counts(
            owa_logs, BINS, n_unbiased_samples=len(owa_logs), rng=3,
            estimator="voronoi",
        )
        assert np.array_equal(new.slot_ids, old.slot_ids)
        assert np.array_equal(new.biased_counts, old.biased_counts)
        assert np.array_equal(new.time_fractions, old.time_fractions)
        assert np.array_equal(new.slot_seconds, old.slot_seconds)

    def test_sampling_matches_per_slot_loops(self, owa_logs):
        """Deterministic halves bitwise; MC fractions within sampling noise.

        The single-draw sampler consumes randomness on a different schedule
        than the legacy bounded-redraw loop, so its time fractions are a
        *different unbiased estimate* of the same quantity — equal in
        distribution, not bitwise. Everything not touched by the draw must
        still match exactly.
        """
        new = slotted_counts(
            owa_logs, BINS, n_unbiased_samples=len(owa_logs), rng=3,
            estimator="sampling",
        )
        old = _legacy_slotted_counts(
            owa_logs, BINS, n_unbiased_samples=len(owa_logs), rng=3,
            estimator="sampling",
        )
        assert np.array_equal(new.slot_ids, old.slot_ids)
        assert np.array_equal(new.biased_counts, old.biased_counts)
        assert np.array_equal(new.slot_seconds, old.slot_seconds)
        assert np.max(np.abs(new.time_fractions - old.time_fractions)) < 0.05

    def test_period_lookup_matches_python_loop(self, owa_logs):
        new = slot_of_times(owa_logs.times, "period", owa_logs.tz_offsets)
        old = _legacy_period_slots(owa_logs.times, owa_logs.tz_offsets)
        assert np.array_equal(new, old)


class TestCorrectedHistograms:
    @pytest.mark.parametrize("estimator", ESTIMATORS)
    def test_contraction_matches_per_sample_rescan(self, owa_logs, estimator):
        """B from the tensor contraction == B from rescanning every action."""
        counts, alpha = _counts_and_alpha(owa_logs, estimator)
        b_new, u_new = corrected_histograms_from_counts(counts, alpha)
        b_old, u_old = _legacy_corrected_histograms(owa_logs, BINS, alpha)
        np.testing.assert_allclose(b_new.counts, b_old.counts, rtol=1e-9, atol=1e-9)
        assert np.array_equal(u_new.counts, u_old.counts)

    def test_contraction_matches_kept_reference_impl(self, owa_logs):
        """The in-tree per-sample reference stayed equivalent too."""
        counts, alpha = _counts_and_alpha(owa_logs, "voronoi")
        b_new, u_new = corrected_histograms_from_counts(counts, alpha)
        b_ref, u_ref = corrected_histograms(owa_logs, BINS, alpha)
        np.testing.assert_allclose(b_new.counts, b_ref.counts, rtol=1e-9, atol=1e-9)
        assert np.array_equal(u_new.counts, u_ref.counts)

    def test_every_reference_slot_agrees(self, owa_logs):
        counts, _ = _counts_and_alpha(owa_logs, "voronoi")
        for reference in counts.busiest_slots(3):
            alpha = alpha_from_counts(counts, reference_slot=reference)
            b_new, _ = corrected_histograms_from_counts(counts, alpha)
            b_old, _ = _legacy_corrected_histograms(owa_logs, BINS, alpha)
            np.testing.assert_allclose(b_new.counts, b_old.counts, rtol=1e-9, atol=1e-9)

    def test_mismatched_grids_rejected(self, owa_logs):
        counts, alpha = _counts_and_alpha(owa_logs, "voronoi")
        other = slotted_counts(
            owa_logs, latency_bins(2000.0, 10.0),
            n_unbiased_samples=len(owa_logs), rng=5, estimator="voronoi",
        )
        with pytest.raises(ConfigError):
            corrected_histograms_from_counts(other, alpha)


class TestBackendEquivalence:
    @pytest.mark.parametrize("estimator", ESTIMATORS)
    def test_cached_curve_is_bit_identical(self, owa_logs, estimator):
        config = AutoSensConfig(seed=17, unbiased_estimator=estimator)
        cached = AutoSens(config, cache=True)
        uncached = AutoSens(config, cache=False)
        first = cached.preference_curve(owa_logs, action="SelectMail")
        hit = cached.preference_curve(owa_logs, action="SelectMail")
        cold = uncached.preference_curve(owa_logs, action="SelectMail")
        assert cached.cache.hits > 0
        _assert_curves_identical(first, hit)
        _assert_curves_identical(first, cold)

    @pytest.mark.parametrize("estimator", ESTIMATORS)
    def test_process_sweep_matches_serial_bitwise(self, owa_logs, estimator):
        config = AutoSensConfig(seed=17, unbiased_estimator=estimator)
        serial = AutoSens(config, executor="serial")
        process = AutoSens(config, executor=ProcessExecutor(max_workers=2))
        serial_curves = serial.curves_by_action(owa_logs)
        process_curves = process.curves_by_action(owa_logs)
        assert serial_curves.keys() == process_curves.keys()
        for name in serial_curves:
            _assert_curves_identical(serial_curves[name], process_curves[name])

    def test_period_sweep_matches_serial_bitwise(self, owa_logs):
        config = AutoSensConfig(seed=23)
        serial_curves = AutoSens(config, executor="serial").curves_by_period(
            owa_logs, action="SelectMail"
        )
        process_curves = AutoSens(
            config, executor=ProcessExecutor(max_workers=2)
        ).curves_by_period(owa_logs, action="SelectMail")
        assert serial_curves.keys() == process_curves.keys()
        for name in serial_curves:
            _assert_curves_identical(serial_curves[name], process_curves[name])
