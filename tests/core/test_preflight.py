"""Tests for the preflight diagnostic."""

import numpy as np
import pytest

from repro.errors import EmptyDataError
from repro.core.preflight import preflight
from repro.telemetry import LogStore


class TestPreflight:
    def test_good_workload_ready(self, owa_logs):
        report = preflight(owa_logs, rng=1)
        assert report.ready
        assert report.locality_strength > 0.3
        assert report.dynamic_range > 1.5
        assert any("voronoi" in r for r in report.recommendations)

    def test_random_latency_not_applicable(self):
        """i.i.d. latency = no natural experiment; must say NOT READY."""
        rng = np.random.default_rng(0)
        logs = LogStore.from_arrays(
            times=np.sort(rng.uniform(0, 5 * 86400.0, 20_000)),
            latencies_ms=rng.lognormal(5.7, 0.5, 20_000),
            actions=["A"] * 20_000,
        )
        report = preflight(logs, rng=1)
        assert not report.ready
        assert any("not applicable" in r for r in report.recommendations)

    def test_narrow_range_warned(self):
        rng = np.random.default_rng(1)
        from repro.stats.ou_process import ar1_series

        # strong locality but tiny amplitude
        level = 300.0 * np.exp(0.02 * ar1_series(20_000, phi=0.999, rng=2))
        logs = LogStore.from_arrays(
            times=np.arange(20_000) * 20.0,
            latencies_ms=level,
            actions=["A"] * 20_000,
        )
        report = preflight(logs, rng=1)
        assert any("narrow range" in r for r in report.recommendations)

    def test_long_window_recommends_weekly_slots(self):
        rng = np.random.default_rng(3)
        from repro.stats.ou_process import ar1_series

        n = 30_000
        logs = LogStore.from_arrays(
            times=np.sort(rng.uniform(0, 20 * 86400.0, n)),
            latencies_ms=300.0 * np.exp(0.5 * ar1_series(n, phi=0.99, rng=4)),
            actions=["A"] * n,
        )
        report = preflight(logs, rng=1)
        assert any("hour-of-week" in r for r in report.recommendations)

    def test_blocking_quality(self):
        logs = LogStore.from_arrays(
            times=np.arange(50.0), latencies_ms=np.full(50, 300.0),
            actions=["A"] * 50,
        )
        report = preflight(logs, rng=1, min_rows=1000)
        assert not report.ready
        assert not report.quality.ok

    def test_rows_render(self, owa_logs):
        rows = preflight(owa_logs, rng=1).rows()
        assert rows[-1][0] == "verdict"

    def test_empty_rejected(self):
        with pytest.raises(EmptyDataError):
            preflight(LogStore.from_records([]))
