"""Tests for curve distances and stability reports."""

import numpy as np
import pytest

from repro.errors import ConfigError, InsufficientDataError
from repro.core.compare import curve_distance, stability_report
from repro.core.result import PreferenceResult
from repro.stats.histogram import HistogramBins


def _curve(nlp_values):
    nlp = np.asarray(nlp_values, dtype=float)
    bins = HistogramBins(0.0, nlp.size * 100.0, 100.0)
    counts = np.where(np.isnan(nlp), 0.0, 100.0)
    return PreferenceResult(
        bins=bins, biased_counts=counts, unbiased_counts=counts,
        raw_ratio=nlp.copy(), smoothed_ratio=nlp.copy(), nlp=nlp,
        reference_ms=150.0,
    )


class TestCurveDistance:
    def test_identical_curves_zero(self):
        a = _curve([1.0, 0.9, 0.8])
        d = curve_distance(a, _curve([1.0, 0.9, 0.8]))
        assert d.max_abs_gap == 0.0
        assert d.mean_abs_gap == 0.0

    def test_gap_located(self):
        a = _curve([1.0, 0.9, 0.8, 0.7])
        b = _curve([1.0, 0.9, 0.5, 0.7])
        d = curve_distance(a, b)
        assert d.max_abs_gap == pytest.approx(0.3)
        assert d.worst_latency_ms == 250.0

    def test_nan_bins_excluded(self):
        a = _curve([1.0, np.nan, 0.8])
        b = _curve([0.5, 0.9, 0.8])
        d = curve_distance(a, b)
        assert d.n_common_bins == 2
        assert d.max_abs_gap == pytest.approx(0.5)

    def test_disjoint_support_raises(self):
        a = _curve([1.0, np.nan])
        b = _curve([np.nan, 0.9])
        with pytest.raises(InsufficientDataError):
            curve_distance(a, b)

    def test_grid_mismatch(self):
        a = _curve([1.0, 0.9])
        b = _curve([1.0, 0.9, 0.8])
        with pytest.raises(ConfigError):
            curve_distance(a, b)


class TestStability:
    def test_pairs(self):
        report = stability_report({
            "jan": _curve([1.0, 0.9, 0.8]),
            "feb": _curve([1.0, 0.88, 0.79]),
            "mar": _curve([1.0, 0.7, 0.6]),
        })
        assert len(report.pairwise) == 3
        assert report.stable(0.25)
        assert not report.stable(0.05)

    def test_rows_shape(self):
        report = stability_report({
            "a": _curve([1.0, 0.9]),
            "b": _curve([1.0, 0.8]),
        })
        rows = report.rows()
        assert rows[0][0] == "a vs b"

    def test_needs_two(self):
        with pytest.raises(InsufficientDataError):
            stability_report({"only": _curve([1.0])})

    def test_on_real_months(self, engine, owa_logs):
        curves = engine.curves_by_month(owa_logs, action="SelectMail",
                                        days_per_month=3)
        if len(curves) >= 2:
            report = stability_report(
                {f"m{k}": v for k, v in curves.items()})
            assert report.mean_abs_gap < 0.3
