"""Tests for the day-block bootstrap confidence bands."""

import numpy as np
import pytest

from repro.errors import InsufficientDataError
from repro.core import AutoSensConfig
from repro.core.uncertainty import BandedResult, nlp_confidence_band, _resample_days


class TestResampleDays:
    def test_same_span(self, owa_logs, rng):
        replicate = _resample_days(owa_logs, rng)
        orig_days = np.floor(owa_logs.duration() / 86400.0)
        rep_days = np.floor(replicate.duration() / 86400.0)
        assert abs(orig_days - rep_days) <= 1

    def test_sorted(self, owa_logs, rng):
        replicate = _resample_days(owa_logs, rng)
        assert np.all(np.diff(replicate.times) >= 0)

    def test_row_count_same_order(self, owa_logs, rng):
        replicate = _resample_days(owa_logs, rng)
        assert 0.4 * len(owa_logs) < len(replicate) < 2.0 * len(owa_logs)


class TestBand:
    @pytest.fixture(scope="class")
    def band(self, owa_logs):
        return nlp_confidence_band(
            owa_logs, AutoSensConfig(seed=3), n_resamples=8, rng=1,
            action="SelectMail", user_class="business",
        )

    def test_band_contains_point_mostly(self, band):
        lo, hi = band.band_at(600.0)
        point = float(band.point.at(600.0))
        assert lo - 0.05 <= point <= hi + 0.05

    def test_band_ordering(self, band):
        lo, hi = band.band_at(500.0)
        assert lo <= hi

    def test_band_wider_in_tail(self, band):
        assert band.halfwidth_at(1100.0) >= band.halfwidth_at(400.0) - 0.02

    def test_separation_helper(self, band):
        shifted = BandedResult(
            point=band.point,
            low=band.low + 0.5,
            high=band.high + 0.5,
            confidence=band.confidence,
            n_resamples=band.n_resamples,
        )
        assert band.separated_from(shifted, 500.0)
        assert not band.separated_from(band, 500.0)

    def test_all_nan_rejected(self, band):
        empty = BandedResult(
            point=band.point,
            low=np.full_like(band.low, np.nan),
            high=np.full_like(band.high, np.nan),
            confidence=0.9, n_resamples=1,
        )
        with pytest.raises(InsufficientDataError):
            empty.band_at(500.0)
