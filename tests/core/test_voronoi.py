"""Tests for the deterministic Voronoi-weighted unbiased estimator."""

import numpy as np
import pytest

from repro.errors import ConfigError, EmptyDataError
from repro.core import AutoSens, AutoSensConfig
from repro.core.unbiased import unbiased_histogram, voronoi_weights
from repro.stats.histogram import HistogramBins
from repro.telemetry import LogStore


class TestVoronoiWeights:
    def test_uniform_spacing_equal_weights(self):
        times = np.arange(10.0)
        weights = voronoi_weights(times)
        # interior points get 1.0; edges get 0.5 each
        assert np.allclose(weights[1:-1], 1.0)
        assert np.allclose(weights[[0, -1]], 0.5)

    def test_weights_sum_to_window(self):
        rng = np.random.default_rng(0)
        times = np.sort(rng.uniform(0, 100, 57))
        weights = voronoi_weights(times, time_range=(0.0, 100.0))
        assert np.isclose(weights.sum(), 100.0)

    def test_isolated_sample_gets_big_cell(self):
        times = np.array([0.0, 1.0, 2.0, 100.0])
        weights = voronoi_weights(times)
        assert weights[3] > 10 * weights[1]

    def test_duplicates_split_evenly(self):
        times = np.array([0.0, 5.0, 5.0, 10.0])
        weights = voronoi_weights(times)
        assert np.isclose(weights[1], weights[2])
        # the two duplicates together own the middle cell
        assert np.isclose(weights[1] + weights[2], 5.0)

    def test_single_sample(self):
        weights = voronoi_weights(np.array([3.0]), time_range=(0.0, 10.0))
        assert np.isclose(weights[0], 10.0)

    def test_unsorted_rejected(self):
        with pytest.raises(EmptyDataError):
            voronoi_weights(np.array([2.0, 1.0]))

    def test_empty_rejected(self):
        with pytest.raises(EmptyDataError):
            voronoi_weights(np.array([]))

    def test_matches_monte_carlo_expectation(self):
        """Voronoi is the infinite-draw limit of the sampling estimator."""
        rng = np.random.default_rng(1)
        # dense cluster of fast samples, sparse slow samples
        fast = np.sort(rng.uniform(0, 100.0, 200))
        slow = np.sort(rng.uniform(100.0, 200.0, 20))
        times = np.concatenate([fast, slow])
        latencies = np.concatenate([np.full(200, 50.0), np.full(20, 150.0)])
        logs = LogStore.from_arrays(times=times, latencies_ms=latencies,
                                    actions=["a"] * 220)
        bins = HistogramBins(0.0, 200.0, 100.0)
        voronoi = unbiased_histogram(logs, bins, estimator="voronoi")
        sampled = unbiased_histogram(logs, bins, n_samples=200_000, rng=2)
        assert np.allclose(voronoi.pmf(), sampled.pmf(), atol=0.01)


class TestVoronoiPipeline:
    def test_deterministic_across_seeds(self, owa_logs):
        a = AutoSens(AutoSensConfig(seed=1, unbiased_estimator="voronoi")
                     ).preference_curve(owa_logs, action="SelectMail")
        b = AutoSens(AutoSensConfig(seed=99, unbiased_estimator="voronoi")
                     ).preference_curve(owa_logs, action="SelectMail")
        assert np.allclose(a.nlp, b.nlp, equal_nan=True)

    def test_agrees_with_sampling(self, owa_logs):
        voronoi = AutoSens(AutoSensConfig(seed=1, unbiased_estimator="voronoi")
                           ).preference_curve(owa_logs, action="SelectMail")
        sampling = AutoSens(AutoSensConfig(seed=1)
                            ).preference_curve(owa_logs, action="SelectMail")
        for probe in (500.0, 900.0):
            assert abs(float(voronoi.at(probe)) - float(sampling.at(probe))) < 0.05

    def test_unknown_estimator_rejected(self):
        with pytest.raises(ConfigError):
            AutoSensConfig(unbiased_estimator="psychic")

    def test_histogram_unknown_estimator(self, owa_logs):
        bins = HistogramBins(0.0, 3000.0, 10.0)
        with pytest.raises(ConfigError):
            unbiased_histogram(owa_logs, bins, estimator="nope")
