"""Tests for locality diagnostics and quartile assignment."""

import numpy as np
import pytest

from repro.errors import EmptyDataError, InsufficientDataError, PrivacyError
from repro.core.locality import density_latency_series, locality_report
from repro.core.quartiles import assign_quartiles, quartile_slices
from repro.telemetry import ActionRecord, LogStore


class TestLocalityReport:
    def test_on_owa_logs(self, owa_logs, engine):
        comparison = locality_report(owa_logs, rng=1)
        assert comparison.actual < 0.8
        assert 0.9 < comparison.shuffled < 1.1
        assert comparison.sorted < 0.01

    def test_too_few_rows(self):
        logs = LogStore.from_records([
            ActionRecord(time=0.0, action="a", latency_ms=1.0),
        ])
        with pytest.raises(EmptyDataError):
            locality_report(logs)


class TestDensitySeries:
    def test_window_counts_sum(self, owa_logs):
        series = density_latency_series(owa_logs, window_seconds=60.0)
        assert series.action_counts.sum() == len(owa_logs)

    def test_empty_windows_nan_latency(self):
        logs = LogStore.from_arrays(
            times=[0.0, 300.0], latencies_ms=[100.0, 200.0], actions=["a", "a"]
        )
        series = density_latency_series(logs, window_seconds=60.0)
        assert series.action_counts[2] == 0
        assert np.isnan(series.mean_latency_ms[2])

    def test_normalized_bounds(self, owa_logs):
        series = density_latency_series(owa_logs)
        counts, lats = series.normalized()
        assert np.nanmin(counts) >= 0.0 and np.nanmax(counts) <= 1.0
        assert np.nanmin(lats) >= 0.0 and np.nanmax(lats) <= 1.0

    def test_detrended_negative_on_owa(self, owa_logs):
        series = density_latency_series(owa_logs)
        assert series.detrended_correlation() < -0.05

    def test_empty_rejected(self):
        with pytest.raises(EmptyDataError):
            density_latency_series(LogStore.from_records([]))

    def test_correlation_needs_windows(self):
        logs = LogStore.from_arrays(times=[0.0], latencies_ms=[1.0], actions=["a"])
        series = density_latency_series(logs)
        with pytest.raises(InsufficientDataError):
            series.pearson_correlation


def _user_logs(medians, actions_each=9):
    """One user per median latency value."""
    records = []
    for i, median in enumerate(medians):
        for j in range(actions_each):
            records.append(ActionRecord(
                time=float(i * 1000 + j), action="a",
                latency_ms=float(median + (j - actions_each // 2)),
                user_id=f"u{i}",
            ))
    return LogStore.from_records(records)


class TestQuartiles:
    def test_equal_population_split(self):
        logs = _user_logs(np.linspace(100, 800, 40))
        assignment = assign_quartiles(logs)
        counts = np.bincount(assignment.quartile, minlength=4)
        assert counts.tolist() == [10, 10, 10, 10]

    def test_ordering_by_median(self):
        logs = _user_logs([100, 200, 300, 400])
        assignment = assign_quartiles(logs)
        order = assignment.quartile[np.argsort(assignment.medians_ms)]
        assert order.tolist() == sorted(order.tolist())

    def test_min_actions_filter(self):
        records = [ActionRecord(time=0.0, action="a", latency_ms=50.0,
                                user_id="rare")]
        logs = _user_logs([100, 200, 300, 400]).concat(
            LogStore.from_records(records)
        )
        assignment = assign_quartiles(logs, min_actions_per_user=5)
        assert assignment.user_codes.size == 4

    def test_too_few_users(self):
        logs = _user_logs([100, 200])
        with pytest.raises(InsufficientDataError):
            assign_quartiles(logs)

    def test_slices_partition_logs(self):
        logs = _user_logs(np.linspace(100, 800, 16))
        slices = quartile_slices(logs)
        assert sum(len(s) for s in slices.values()) == len(logs)
        assert set(slices) == {"Q1", "Q2", "Q3", "Q4"}

    def test_q1_is_fastest(self):
        logs = _user_logs(np.linspace(100, 800, 16))
        slices = quartile_slices(logs)
        assert slices["Q1"].latencies_ms.mean() < slices["Q4"].latencies_ms.mean()

    def test_privacy_guard(self):
        logs = _user_logs(np.linspace(100, 800, 8))
        with pytest.raises(PrivacyError):
            quartile_slices(logs, min_users=50)

    def test_on_conditioning_workload(self, conditioning_result):
        logs = conditioning_result.logs
        assignment = assign_quartiles(logs, min_actions_per_user=5)
        slices = quartile_slices(logs, assignment)
        assert all(len(s) > 0 for s in slices.values())
        # per-user latency multipliers should rise across quartiles; user
        # codes index user_vocab, which is exactly the population order
        population = conditioning_result.population
        q1_codes = assignment.users_in(0)
        q4_codes = assignment.users_in(3)
        mult_q1 = population.latency_multipliers[q1_codes]
        mult_q4 = population.latency_multipliers[q4_codes]
        assert mult_q1.mean() < mult_q4.mean()
