"""Tests for the what-if activity-impact engine."""

import numpy as np
import pytest

from repro.errors import ConfigError, InsufficientDataError
from repro.core.result import PreferenceResult
from repro.core.whatif import cap_ms, predict_activity_impact, scale, shift_ms
from repro.stats.histogram import HistogramBins


def _curve(nlp_values, u_counts):
    bins = HistogramBins(0.0, len(nlp_values) * 100.0, 100.0)
    nlp = np.asarray(nlp_values, dtype=float)
    return PreferenceResult(
        bins=bins,
        biased_counts=np.asarray(u_counts, dtype=float),
        unbiased_counts=np.asarray(u_counts, dtype=float),
        raw_ratio=nlp.copy(),
        smoothed_ratio=nlp.copy(),
        nlp=nlp,
        reference_ms=150.0,
    )


class TestTransforms:
    def test_shift_floors_at_zero(self):
        out = shift_ms(-500.0)(np.array([100.0, 800.0]))
        assert out.tolist() == [0.0, 300.0]

    def test_scale(self):
        assert scale(0.5)(np.array([400.0]))[0] == 200.0

    def test_cap(self):
        out = cap_ms(500.0)(np.array([300.0, 900.0]))
        assert out.tolist() == [300.0, 500.0]

    def test_bad_params(self):
        with pytest.raises(ConfigError):
            scale(0.0)
        with pytest.raises(ConfigError):
            cap_ms(-1.0)


class TestPrediction:
    def test_flat_curve_no_change(self):
        curve = _curve([1.0] * 8, [100] * 8)
        report = predict_activity_impact(curve, scale(0.5))
        assert report.activity_ratio == pytest.approx(1.0)
        assert report.activity_change_pct == pytest.approx(0.0)

    def test_declining_curve_speedup_helps(self):
        curve = _curve(np.linspace(1.2, 0.5, 10), [100] * 10)
        faster = predict_activity_impact(curve, shift_ms(-200.0))
        slower = predict_activity_impact(curve, shift_ms(+200.0), min_coverage=0.5)
        assert faster.activity_ratio > 1.0
        assert slower.activity_ratio < 1.0

    def test_exact_two_bin_case(self):
        # U mass 50/50 on bins at 50 and 150 ms; rho = 1.0 and 0.5.
        curve = _curve([1.0, 0.5], [100, 100])
        # mapping everything to the fast bin doubles nothing for bin 0 and
        # lifts bin 1 from 0.5 to 1.0 -> ratio (1+1)/(1+0.5) = 4/3
        report = predict_activity_impact(curve, cap_ms(50.0))
        assert report.activity_ratio == pytest.approx(4.0 / 3.0)

    def test_coverage_guard(self):
        curve = _curve([1.0, 0.9, 0.8, np.nan, np.nan, np.nan],
                       [100, 100, 100, 100, 100, 100])
        with pytest.raises(InsufficientDataError):
            predict_activity_impact(curve, shift_ms(+250.0), min_coverage=0.9)

    def test_mean_latencies_reported(self):
        curve = _curve([1.0] * 6, [100] * 6)
        report = predict_activity_impact(curve, scale(0.5))
        assert report.mean_latency_after == pytest.approx(
            0.5 * report.mean_latency_before)

    def test_no_unbiased_mass(self):
        curve = _curve([1.0, 1.0], [0, 0])
        with pytest.raises(InsufficientDataError):
            predict_activity_impact(curve, scale(0.9))

    def test_on_real_curve(self, owa_logs, engine):
        curve = engine.preference_curve(owa_logs, action="SelectMail",
                                        user_class="business")
        report = predict_activity_impact(curve, scale(0.8))
        assert report.activity_ratio > 1.0       # speedup helps
        assert 0.0 < report.activity_change_pct < 20.0
        assert report.coverage > 0.9
