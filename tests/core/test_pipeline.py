"""Tests for the AutoSens engine (pipeline-level behaviour)."""

import numpy as np
import pytest

from repro.errors import ConfigError, InsufficientDataError
from repro.core import AutoSens, AutoSensConfig
from repro.core.validation import compare_to_truth, monotone_ordering
from repro.types import ActionType, DayPeriod, UserClass


class TestConfig:
    def test_defaults_match_paper(self):
        config = AutoSensConfig()
        assert config.bin_width_ms == 10.0
        assert config.smoothing_window == 101
        assert config.smoothing_degree == 3
        assert config.reference_ms == 300.0
        assert config.time_correction is True

    def test_bins(self):
        assert AutoSensConfig().bins().count == 300

    def test_validation(self):
        with pytest.raises(ConfigError):
            AutoSensConfig(n_reference_slots=0)
        with pytest.raises(ConfigError):
            AutoSensConfig(unbiased_oversample=0.0)


class TestPreferenceCurve:
    def test_basic_curve(self, owa_logs, engine):
        curve = engine.preference_curve(owa_logs, action="SelectMail",
                                        user_class="business")
        assert curve.n_actions > 1000
        assert "SelectMail" in curve.slice_description
        assert float(curve.at(1000.0)) < float(curve.at(400.0))

    def test_reference_value_is_one(self, owa_logs, engine):
        curve = engine.preference_curve(owa_logs, action="SelectMail")
        assert float(curve.at(300.0)) == pytest.approx(1.0, abs=0.03)

    def test_accepts_enums(self, owa_logs, engine):
        curve = engine.preference_curve(owa_logs,
                                        action=ActionType.SELECT_MAIL,
                                        user_class=UserClass.BUSINESS)
        assert curve.n_actions > 0

    def test_insufficient_slice_raises(self, owa_logs, engine):
        with pytest.raises(InsufficientDataError):
            engine.preference_curve(owa_logs, action="NoSuchAction")

    def test_metadata_reference_slots(self, owa_logs, engine):
        curve = engine.preference_curve(owa_logs, action="SelectMail")
        refs = curve.metadata["reference_slots"]
        assert len(refs) == engine.config.n_reference_slots

    def test_no_time_correction_mode(self, owa_logs):
        engine = AutoSens(AutoSensConfig(seed=1, time_correction=False))
        curve = engine.preference_curve(owa_logs, action="SelectMail")
        assert "reference_slots" not in curve.metadata

    def test_deterministic_given_seed(self, owa_logs):
        a = AutoSens(AutoSensConfig(seed=5)).preference_curve(
            owa_logs, action="SelectMail")
        b = AutoSens(AutoSensConfig(seed=5)).preference_curve(
            owa_logs, action="SelectMail")
        assert np.allclose(a.nlp, b.nlp, equal_nan=True)


class TestSegmentations:
    def test_curves_by_action(self, owa_logs, engine):
        curves = engine.curves_by_action(owa_logs, user_class="business")
        assert set(curves) == {a.value for a in ActionType}

    def test_curves_by_user_class(self, owa_logs, engine):
        curves = engine.curves_by_user_class(owa_logs, action="SelectMail")
        assert set(curves) == {"business", "consumer"}

    def test_curves_by_period(self, owa_logs, engine):
        curves = engine.curves_by_period(owa_logs, action="SelectMail")
        assert len(curves) == 4

    def test_curves_by_quartile(self, conditioning_result, engine):
        curves = engine.curves_by_quartile(conditioning_result.logs,
                                           action="SelectMail")
        assert set(curves) == {"Q1", "Q2", "Q3", "Q4"}
        assert all("quartile=" in c.slice_description for c in curves.values())

    def test_curves_by_month_autodetect(self, owa_logs, engine):
        curves = engine.curves_by_month(owa_logs, action="SelectMail",
                                        days_per_month=3)
        assert 0 in curves

    def test_monotone_ordering_helper(self, owa_logs, engine):
        curves = engine.curves_by_action(owa_logs, user_class="business")
        order = monotone_ordering(curves, at_latency=800.0)
        assert order[0] in ("SelectMail", "SwitchFolder")
        assert order[-1] == "ComposeSend"


class TestDistributions:
    def test_shapes(self, owa_logs, engine):
        biased, unbiased = engine.distributions(
            owa_logs.where(action="SelectMail"))
        assert biased.bins == unbiased.bins
        assert biased.total > 0 and unbiased.total > 0

    def test_alpha_profile_period_scheme(self, owa_logs, engine):
        alpha = engine.alpha_profile(owa_logs, scheme="period",
                                     action="SelectMail")
        assert alpha.reference_slot == 0  # 8am-2pm
        assert alpha.alpha_by_slot.size == 4
        labels = alpha.labels()
        by_label = dict(zip(labels, alpha.alpha_by_slot))
        assert by_label["2am-8am"] < by_label["8am-2pm"]


class TestValidationHelpers:
    def test_compare_to_truth_reports(self, owa_logs, engine):
        curve = engine.preference_curve(owa_logs, action="SelectMail",
                                        user_class="business")
        report = compare_to_truth(curve, lambda lat: np.ones_like(lat),
                                  anchor_latencies=(500.0,))
        assert len(report.anchors) == 1
        assert report.anchors[0].expected == 1.0
        assert report.rows()[0]["latency_ms"] == 500.0

    def test_compare_out_of_range_anchors_skipped(self, owa_logs, engine):
        curve = engine.preference_curve(owa_logs, action="SelectMail")
        with pytest.raises(InsufficientDataError):
            compare_to_truth(curve, lambda lat: np.ones_like(lat),
                             anchor_latencies=(99_999.0,))
