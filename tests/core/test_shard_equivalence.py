"""Equivalence guarantees of the sharded U-estimation path.

The sharding contract (see ``slotted_counts`` and DESIGN.md §12): results
depend only on ``(rng, n_shards)``, never on the executor backend — the
serial and process backends are bit-identical shard by shard. Across
*different* shard counts the draw is a stratified variant of the single
uniform draw: same expectation, so fractions and downstream curves agree
within Monte Carlo noise, not bitwise.

Tolerances carry ~3x headroom over diffs measured on the shared fixture
(shard-vs-unsharded fraction diff ≤ 0.015, NLP curve diff ≤ 0.10).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AutoSens, AutoSensConfig
from repro.core.alpha import (
    MAX_TOPUP_BATCHES,
    _acceptance_estimate,
    _draw_unbiased_tensor,
    slot_of_times,
    slot_time_coverage,
    slotted_counts,
)
from repro.errors import ConfigError
from repro.parallel import ProcessExecutor, SerialExecutor
from repro.stats.histogram import latency_bins

BINS = latency_bins(3000.0, 10.0)


def _counts(logs, *, rng=7, n_shards=1, executor=None):
    return slotted_counts(
        logs, BINS, n_unbiased_samples=len(logs), rng=rng,
        n_shards=n_shards, executor=executor,
    )


def _assert_counts_equal(a, b):
    assert np.array_equal(a.slot_ids, b.slot_ids)
    assert np.array_equal(a.biased_counts, b.biased_counts)
    assert np.array_equal(a.time_fractions, b.time_fractions)
    assert np.array_equal(a.slot_seconds, b.slot_seconds)


class TestBackendIndependence:
    @pytest.mark.parametrize("n_shards", [2, 4])
    def test_process_backend_bit_identical(self, owa_logs, n_shards):
        """Per-shard seeds are fixed upfront, so the backend cannot matter."""
        serial = _counts(owa_logs, n_shards=n_shards, executor=SerialExecutor())
        process = _counts(
            owa_logs, n_shards=n_shards, executor=ProcessExecutor(max_workers=2)
        )
        _assert_counts_equal(serial, process)

    def test_single_shard_matches_unsharded_bitwise(self, owa_logs):
        """``n_shards=1`` is the unsharded path, not a 1-stratum variant."""
        _assert_counts_equal(_counts(owa_logs), _counts(owa_logs, n_shards=1))

    def test_repeated_calls_are_pure(self, owa_logs):
        _assert_counts_equal(
            _counts(owa_logs, n_shards=2), _counts(owa_logs, n_shards=2)
        )

    def test_rejects_nonpositive_shards(self, owa_logs):
        with pytest.raises(ConfigError):
            _counts(owa_logs, n_shards=0)


class TestStratifiedEquivalence:
    @pytest.mark.parametrize("n_shards", [2, 4])
    def test_fractions_within_monte_carlo_noise(self, owa_logs, n_shards):
        """Sharded vs unsharded: deterministic halves bitwise, MC bounded."""
        base = _counts(owa_logs)
        sharded = _counts(owa_logs, n_shards=n_shards)
        assert np.array_equal(base.slot_ids, sharded.slot_ids)
        assert np.array_equal(base.biased_counts, sharded.biased_counts)
        assert np.array_equal(base.slot_seconds, sharded.slot_seconds)
        assert np.max(np.abs(base.time_fractions - sharded.time_fractions)) < 0.05

    def test_downstream_nlp_curves_equivalent(self, owa_logs):
        """Sharding stays invisible to the paper's headline curves."""
        plain = AutoSens(AutoSensConfig(seed=17, unbiased_shards=1))
        sharded = AutoSens(AutoSensConfig(seed=17, unbiased_shards=2))
        a = plain.preference_curve(owa_logs, action="SelectMail")
        b = sharded.preference_curve(owa_logs, action="SelectMail")
        assert a.n_actions == b.n_actions
        both = ~np.isnan(a.nlp) & ~np.isnan(b.nlp)
        either = ~np.isnan(a.nlp) | ~np.isnan(b.nlp)
        # The min-support cutoff may move by a bin or two at the sparse
        # tail; the shared valid range must still dominate.
        assert both.sum() >= 0.9 * either.sum()
        assert np.max(np.abs(a.nlp[both] - b.nlp[both])) < 0.3
        assert np.mean(np.abs(a.nlp[both] - b.nlp[both])) < 0.05


def _night_slice(seed: int, n: int):
    """Actions confined to hours 1-3 of each of 5 days: ~8% of the window
    is populated, so most uniform-time queries are wasted — the regime the
    waste-compensated inflation exists for.
    """
    rng = np.random.default_rng(seed)
    day = rng.integers(0, 5, size=n) * 86400.0
    times = np.sort(day + rng.uniform(3600.0, 3 * 3600.0, size=n))
    latencies = rng.uniform(50.0, 500.0, size=n)
    return times, latencies


class TestWasteCompensatedDraw:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), target=st.integers(50, 400))
    def test_reaches_target_on_sparse_slices(self, seed, target):
        """The inflated draw lands past ``target`` even at ~8% acceptance."""
        times, latencies = _night_slice(seed, 200)
        bin_idx = BINS.index_of(latencies)
        slot_ids = np.unique(slot_of_times(times, "hour-of-day"))
        lo, hi = 0.0, 5 * 86400.0
        seconds = slot_time_coverage(lo, hi, "hour-of-day", slot_ids)
        acceptance = _acceptance_estimate(seconds, hi - lo, bin_idx)
        u, accepted, drawn, batches = _draw_unbiased_tensor(
            times, bin_idx, slot_ids, BINS.count, "hour-of-day", 0.0,
            lo, hi, target, acceptance, np.random.default_rng(seed),
        )
        assert accepted >= target
        assert u.sum() == accepted
        assert drawn >= accepted
        assert 1 <= batches <= 1 + MAX_TOPUP_BATCHES

    def test_off_grid_samples_terminate_empty(self):
        """No in-grid sample → no query can ever be accepted; the draw must
        return an empty tensor instead of looping on top-ups."""
        times = np.array([10.0, 20.0, 30.0])
        bin_idx = np.array([-1, -1, -1])
        slot_ids = np.unique(slot_of_times(times, "hour-of-day"))
        u, accepted, drawn, batches = _draw_unbiased_tensor(
            times, bin_idx, slot_ids, BINS.count, "hour-of-day", 0.0,
            0.0, 100.0, 64, 1.0, np.random.default_rng(0),
        )
        assert accepted == 0 and drawn == 0 and batches == 0
        assert not u.any()
