"""Tests for the time-based activity factor (alpha) machinery."""

import numpy as np
import pytest

from repro.errors import ConfigError, EmptyDataError
from repro.core.alpha import (
    alpha_from_counts,
    corrected_histograms,
    estimate_alpha,
    slot_labels,
    slot_of_times,
    slotted_counts,
    worked_example,
)
from repro.stats.histogram import HistogramBins, latency_bins
from repro.telemetry import LogStore


class TestWorkedExample:
    """The paper's Table 1, to the printed precision."""

    def test_alpha_per_bin(self):
        example = worked_example()
        assert example.alpha_per_bin["low"] == pytest.approx(0.10833, abs=1e-4)
        assert example.alpha_per_bin["high"] == pytest.approx(0.100, abs=1e-9)

    def test_alpha_average(self):
        assert worked_example().alpha == pytest.approx(0.10417, abs=1e-4)

    def test_normalized_counts(self):
        example = worked_example()
        assert example.normalized_counts["low"] == pytest.approx(249.6, abs=0.1)
        assert example.normalized_counts["high"] == pytest.approx(38.4, abs=0.1)

    def test_naive_rates_inverted(self):
        """Without correction, 'high' latency looks MORE active."""
        example = worked_example()
        assert example.naive_rates["high"] > example.naive_rates["low"]
        assert example.naive_rates["low"] == pytest.approx(116 / 110, abs=1e-6)
        assert example.naive_rates["high"] == pytest.approx(144 / 90, abs=1e-6)

    def test_corrected_rates_sane(self):
        """With correction, 'low' latency is (correctly) more active."""
        example = worked_example()
        assert example.corrected_rates["low"] > example.corrected_rates["high"]
        assert example.corrected_rates["low"] == pytest.approx(3.09, abs=0.01)
        assert example.corrected_rates["high"] == pytest.approx(1.98, abs=0.01)

    def test_rejects_zero_fractions(self):
        with pytest.raises(ConfigError):
            worked_example(day_fractions=(0.0, 1.0))


class TestSlotting:
    def test_hour_of_day(self):
        slots = slot_of_times(np.array([0.0, 3600.0 * 25]), "hour-of-day")
        assert slots.tolist() == [0, 1]

    def test_period(self):
        slots = slot_of_times(np.array([9 * 3600.0, 15 * 3600.0,
                                        21 * 3600.0, 3 * 3600.0]), "period")
        assert slots.tolist() == [0, 1, 2, 3]

    def test_absolute(self):
        slots = slot_of_times(np.array([0.0, 90_000.0]), "absolute-hour")
        assert slots.tolist() == [0, 25]

    def test_unknown_scheme(self):
        with pytest.raises(ConfigError):
            slot_of_times(np.array([0.0]), "fortnight")

    def test_labels(self):
        assert slot_labels("hour-of-day", [0, 13]) == ["00:00", "13:00"]
        assert slot_labels("period", [0]) == ["8am-2pm"]
        assert slot_labels("absolute-hour", [7]) == ["hour+7"]


def _two_regime_logs(rng_seed=0):
    """Days: high latency (500 ms), busy. Nights: low latency (100 ms), quiet.

    10 synthetic days; day slot = hours 8-20, night = rest. Rates: 60/hr
    day, 6/hr night. This is Table 1 as a full log stream.
    """
    rng = np.random.default_rng(rng_seed)
    times, latencies = [], []
    for day in range(10):
        base = day * 86400.0
        day_times = base + rng.uniform(8 * 3600.0, 20 * 3600.0, 720)
        night_a = base + rng.uniform(0.0, 8 * 3600.0, 48)
        night_b = base + rng.uniform(20 * 3600.0, 24 * 3600.0, 24)
        times.append(day_times)
        latencies.append(rng.normal(500.0, 20.0, 720))
        times.append(np.concatenate([night_a, night_b]))
        latencies.append(rng.normal(100.0, 10.0, 72))
    t = np.concatenate(times)
    lat = np.clip(np.concatenate(latencies), 1.0, None)
    order = np.argsort(t)
    return LogStore.from_arrays(times=t[order], latencies_ms=lat[order],
                                actions=["a"] * t.size)


class TestEstimateAlpha:
    def test_night_alpha_low(self):
        logs = _two_regime_logs()
        bins = latency_bins(1000.0, 10.0)
        alpha = estimate_alpha(logs, bins, scheme="hour-of-day", rng=1)
        est = dict(zip(alpha.slot_ids.tolist(), alpha.alpha_by_slot.tolist()))
        assert est[12] == pytest.approx(1.0, abs=0.35)
        assert est[2] < 0.35  # night activity ~10x lower

    def test_reference_slot_is_one(self):
        logs = _two_regime_logs()
        alpha = estimate_alpha(logs, latency_bins(1000.0, 10.0),
                               reference_slot=12, rng=2)
        assert alpha.alpha_of(12) == 1.0

    def test_unknown_reference_rejected(self):
        logs = _two_regime_logs()
        counts = slotted_counts(logs, latency_bins(1000.0, 10.0), rng=3)
        with pytest.raises(ConfigError):
            alpha_from_counts(counts, reference_slot=999)

    def test_busiest_slots_order(self):
        logs = _two_regime_logs()
        counts = slotted_counts(logs, latency_bins(1000.0, 10.0), rng=4)
        busiest = counts.busiest_slots(3)
        assert all(8 <= slot < 20 for slot in busiest)

    def test_weighted_vs_simple_agree_roughly(self):
        logs = _two_regime_logs()
        counts = slotted_counts(logs, latency_bins(1000.0, 10.0), rng=5)
        simple = alpha_from_counts(counts, reference_slot=12, bin_average="simple")
        weighted = alpha_from_counts(counts, reference_slot=12, bin_average="weighted")
        mask = ~np.isnan(simple.alpha_by_slot)
        assert np.allclose(simple.alpha_by_slot[mask],
                           weighted.alpha_by_slot[mask], atol=0.3)

    def test_bad_bin_average(self):
        logs = _two_regime_logs()
        counts = slotted_counts(logs, latency_bins(1000.0, 10.0), rng=6)
        with pytest.raises(ConfigError):
            alpha_from_counts(counts, bin_average="median")

    def test_empty_logs(self):
        with pytest.raises(EmptyDataError):
            estimate_alpha(LogStore.from_records([]), latency_bins())

    def test_alpha_scale_invariance(self):
        """Scaling every count leaves alpha (a rate ratio) unchanged.

        ``min_bin_count=0`` pins the bin-validity mask, which otherwise
        changes with scale and admits different bins to the average.
        """
        logs = _two_regime_logs()
        bins = latency_bins(1000.0, 10.0)
        counts = slotted_counts(logs, bins, rng=7)
        alpha_1 = alpha_from_counts(counts, reference_slot=12, min_bin_count=0.0)
        counts.biased_counts *= 3.0
        alpha_2 = alpha_from_counts(counts, reference_slot=12, min_bin_count=0.0)
        mask = ~np.isnan(alpha_1.alpha_by_slot)
        assert np.allclose(alpha_1.alpha_by_slot[mask],
                           alpha_2.alpha_by_slot[mask])


class TestCorrectedHistograms:
    def test_corrects_inversion(self):
        """The full-pipeline version of Table 1: corrected B must put the
        activity peak back at low latency."""
        logs = _two_regime_logs()
        bins = HistogramBins(0.0, 1000.0, 100.0)
        alpha = estimate_alpha(logs, bins, scheme="hour-of-day", rng=8)
        biased, unbiased = corrected_histograms(logs, bins, alpha)
        ratio = biased.ratio_to(unbiased)
        # bin 1 = 100 ms regime, bin 5 = 500 ms regime
        assert ratio[1] > ratio[5]

    def test_naive_is_inverted(self):
        """Sanity: without correction the same data looks inverted."""
        from repro.core.biased import biased_histogram
        from repro.core.unbiased import unbiased_histogram

        logs = _two_regime_logs()
        bins = HistogramBins(0.0, 1000.0, 100.0)
        biased = biased_histogram(logs, bins)
        unbiased = unbiased_histogram(logs, bins, n_samples=30_000, rng=9)
        ratio = biased.ratio_to(unbiased)
        assert ratio[5] > ratio[1]

    def test_total_mass_positive(self):
        logs = _two_regime_logs()
        bins = HistogramBins(0.0, 1000.0, 100.0)
        alpha = estimate_alpha(logs, bins, rng=10)
        biased, unbiased = corrected_histograms(logs, bins, alpha)
        assert biased.total > 0
        assert unbiased.total > 0

    def test_empty_rejected(self):
        logs = _two_regime_logs()
        bins = HistogramBins(0.0, 1000.0, 100.0)
        alpha = estimate_alpha(logs, bins, rng=11)
        with pytest.raises(EmptyDataError):
            corrected_histograms(LogStore.from_records([]), bins, alpha)
