"""Tests for streaming per-user medians."""

import numpy as np
import pytest

from repro.errors import InsufficientDataError
from repro.core.quartiles import assign_quartiles
from repro.core.streaming import iter_chunks_by_day
from repro.core.user_medians import StreamingUserMedians
from repro.telemetry import LogStore


class TestStreamingUserMedians:
    def test_matches_exact_medians(self, owa_logs):
        tracker = StreamingUserMedians()
        tracker.consume(owa_logs.successful())
        streamed = tracker.medians(min_actions_per_user=10)
        codes, exact = owa_logs.successful().per_user_median_latency()
        exact_by_id = {
            owa_logs.user_vocab[int(code)]: median
            for code, median in zip(codes, exact)
        }
        errors = []
        for user_id, estimate in streamed.items():
            truth = exact_by_id[user_id]
            errors.append(abs(estimate - truth) / truth)
        assert np.median(errors) < 0.05
        assert np.mean(np.asarray(errors) < 0.25) > 0.95

    def test_chunked_equals_single_pass(self, owa_logs):
        whole = StreamingUserMedians()
        whole.consume(owa_logs.successful())
        chunked = StreamingUserMedians()
        for chunk in iter_chunks_by_day(owa_logs.successful()):
            chunked.consume(chunk)
        a = whole.medians(5)
        b = chunked.medians(5)
        assert set(a) == set(b)
        # P2 is order-dependent, but chunking preserves row order here.
        for user_id in list(a)[:50]:
            assert a[user_id] == pytest.approx(b[user_id], rel=1e-9)

    def test_assignment_agrees_with_batch(self, conditioning_result):
        logs = conditioning_result.logs.successful()
        tracker = StreamingUserMedians()
        tracker.consume(logs)
        streamed = tracker.assignment(logs, min_actions_per_user=5)
        batch = assign_quartiles(logs, min_actions_per_user=5)
        batch_map = dict(zip(batch.user_codes.tolist(), batch.quartile.tolist()))
        agree = 0
        total = 0
        for code, quartile in zip(streamed.user_codes, streamed.quartile):
            if int(code) in batch_map:
                total += 1
                # allow off-by-one near cut points
                if abs(batch_map[int(code)] - int(quartile)) <= 1:
                    agree += 1
        assert total > 0
        assert agree / total > 0.95

    def test_min_actions_filter(self, owa_logs):
        tracker = StreamingUserMedians()
        tracker.consume(owa_logs.successful())
        lenient = tracker.medians(1)
        strict = tracker.medians(100)
        assert len(strict) < len(lenient)

    def test_too_few_users(self):
        logs = LogStore.from_arrays(
            times=[0.0, 1.0], latencies_ms=[1.0, 2.0],
            actions=["a", "a"], user_ids=["u", "u"],
        )
        tracker = StreamingUserMedians()
        tracker.consume(logs)
        with pytest.raises(InsufficientDataError):
            tracker.assignment(logs)

    def test_empty_chunk_noop(self):
        tracker = StreamingUserMedians()
        tracker.consume(LogStore.from_records([]))
        assert tracker.n_users == 0
