"""Tests for PreferenceResult: interpolation, serialization."""

import numpy as np
import pytest

from repro.errors import InsufficientDataError
from repro.core.result import PreferenceResult
from repro.stats.histogram import HistogramBins


@pytest.fixture()
def result():
    bins = HistogramBins(0.0, 500.0, 100.0)
    nlp = np.array([1.2, 1.0, 0.8, np.nan, 0.5])
    return PreferenceResult(
        bins=bins,
        biased_counts=np.array([10.0, 20, 30, 0, 5]),
        unbiased_counts=np.array([10.0, 20, 30, 0, 10]),
        raw_ratio=nlp.copy(),
        smoothed_ratio=nlp.copy(),
        nlp=nlp,
        reference_ms=150.0,
        slice_description="test slice",
        n_actions=65,
    )


class TestAccessors:
    def test_latencies_are_centers(self, result):
        assert result.latencies.tolist() == [50.0, 150.0, 250.0, 350.0, 450.0]

    def test_valid_mask(self, result):
        assert result.valid.tolist() == [True, True, True, False, True]

    def test_valid_range(self, result):
        assert result.valid_range() == (50.0, 450.0)

    def test_at_exact_center(self, result):
        assert result.at(150.0) == pytest.approx(1.0)

    def test_at_interpolates(self, result):
        assert result.at(100.0) == pytest.approx(1.1)

    def test_at_skips_nan_bins(self, result):
        # 350 is NaN; interpolation bridges 250 -> 450
        assert result.at(350.0) == pytest.approx((0.8 + 0.5) / 2.0)

    def test_at_outside_range_nan(self, result):
        assert np.isnan(result.at(2000.0))

    def test_at_vectorized(self, result):
        out = result.at(np.array([50.0, 450.0]))
        assert np.allclose(out, [1.2, 0.5])

    def test_drop_at(self, result):
        assert result.drop_at(250.0) == pytest.approx(0.2)

    def test_series_keys(self, result):
        assert set(result.series()) == {
            "latency_ms", "biased_count", "unbiased_count",
            "raw_ratio", "smoothed_ratio", "nlp",
        }

    def test_empty_curve_raises(self):
        bins = HistogramBins(0.0, 100.0, 100.0)
        empty = PreferenceResult(
            bins=bins, biased_counts=np.zeros(1), unbiased_counts=np.zeros(1),
            raw_ratio=np.array([np.nan]), smoothed_ratio=np.array([np.nan]),
            nlp=np.array([np.nan]), reference_ms=50.0,
        )
        with pytest.raises(InsufficientDataError):
            empty.valid_range()


class TestSerialization:
    def test_json_round_trip(self, result, tmp_path):
        path = tmp_path / "curve.json"
        result.save_json(path)
        clone = PreferenceResult.load_json(path)
        assert clone.bins == result.bins
        assert clone.reference_ms == result.reference_ms
        assert clone.slice_description == "test slice"
        assert clone.n_actions == 65
        assert np.allclose(clone.nlp, result.nlp, equal_nan=True)
        assert np.allclose(clone.biased_counts, result.biased_counts)

    def test_nan_becomes_null(self, result, tmp_path):
        path = tmp_path / "curve.json"
        result.save_json(path)
        assert "null" in path.read_text()
        assert "NaN" not in path.read_text()

    def test_repr_mentions_slice(self, result):
        assert "test slice" in repr(result)
