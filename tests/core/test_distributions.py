"""Tests for the biased and unbiased distribution estimators."""

import numpy as np
import pytest

from repro.errors import EmptyDataError
from repro.core.biased import biased_histogram
from repro.core.unbiased import draw_unbiased_samples, unbiased_histogram
from repro.stats.histogram import HistogramBins, latency_bins
from repro.telemetry import ActionRecord, LogStore


def _uniform_logs(n=2000, latency=100.0, span=10_000.0):
    rng = np.random.default_rng(0)
    times = np.sort(rng.uniform(0, span, n))
    return LogStore.from_arrays(
        times=times,
        latencies_ms=np.full(n, latency),
        actions=["a"] * n,
    )


class TestBiased:
    def test_counts_rows(self):
        logs = _uniform_logs(500)
        hist = biased_histogram(logs, latency_bins())
        assert hist.total == 500

    def test_weights_applied(self):
        logs = _uniform_logs(10)
        hist = biased_histogram(logs, latency_bins(),
                                weights=np.full(10, 0.5))
        assert hist.total == 5.0

    def test_empty_raises(self):
        with pytest.raises(EmptyDataError):
            biased_histogram(LogStore.from_records([]), latency_bins())


class TestUnbiasedDraw:
    def test_selected_indices_valid(self):
        logs = _uniform_logs(300)
        draw = draw_unbiased_samples(logs, n_samples=900, rng=1)
        assert draw.query_times.size == 900
        assert draw.selected_indices.min() >= 0
        assert draw.selected_indices.max() < 300

    def test_default_oversample(self):
        logs = _uniform_logs(100)
        draw = draw_unbiased_samples(logs, rng=2)
        assert draw.query_times.size == 200  # DEFAULT_OVERSAMPLE = 2

    def test_selected_latencies_shape(self):
        logs = _uniform_logs(50)
        draw = draw_unbiased_samples(logs, n_samples=75, rng=3)
        assert draw.selected_latencies.shape == (75,)

    def test_empty_raises(self):
        with pytest.raises(EmptyDataError):
            draw_unbiased_samples(LogStore.from_records([]))

    def test_unsorted_logs_handled(self):
        records = [
            ActionRecord(time=50.0, action="a", latency_ms=1.0),
            ActionRecord(time=10.0, action="a", latency_ms=2.0),
        ]
        logs = LogStore.from_records(records)
        draw = draw_unbiased_samples(logs, n_samples=10, rng=4)
        assert np.all(np.diff(draw.sample_times) >= 0)


class TestUnbiasedReweighting:
    def test_corrects_density_bias(self):
        """The core de-biasing property.

        Latency alternates between 100 ms (first half of time, many
        actions) and 500 ms (second half, few actions). The biased
        histogram over-represents 100 ms by construction; the unbiased one
        must recover the 50/50 time share.
        """
        rng = np.random.default_rng(5)
        fast_times = np.sort(rng.uniform(0, 1000.0, 900))
        slow_times = np.sort(rng.uniform(1000.0, 2000.0, 100))
        logs = LogStore.from_arrays(
            times=np.concatenate([fast_times, slow_times]),
            latencies_ms=np.concatenate([np.full(900, 100.0), np.full(100, 500.0)]),
            actions=["a"] * 1000,
        )
        bins = HistogramBins(0.0, 1000.0, 100.0)
        unbiased = unbiased_histogram(logs, bins, n_samples=40_000, rng=6)
        share_fast = unbiased.counts[1] / unbiased.total  # 100 ms bin
        share_slow = unbiased.counts[5] / unbiased.total  # 500 ms bin
        assert abs(share_fast - 0.5) < 0.05
        assert abs(share_slow - 0.5) < 0.05

    def test_biased_vs_unbiased_direction(self):
        """B must over-weight the dense (fast) regime relative to U."""
        rng = np.random.default_rng(7)
        fast_times = np.sort(rng.uniform(0, 1000.0, 900))
        slow_times = np.sort(rng.uniform(1000.0, 2000.0, 100))
        logs = LogStore.from_arrays(
            times=np.concatenate([fast_times, slow_times]),
            latencies_ms=np.concatenate([np.full(900, 100.0), np.full(100, 500.0)]),
            actions=["a"] * 1000,
        )
        bins = HistogramBins(0.0, 1000.0, 100.0)
        biased = biased_histogram(logs, bins)
        unbiased = unbiased_histogram(logs, bins, n_samples=20_000, rng=8)
        ratio = biased.ratio_to(unbiased)
        assert ratio[1] > 1.5  # fast bin over-represented in B
        assert ratio[5] < 0.5  # slow bin under-represented in B

    def test_time_range_override(self):
        logs = _uniform_logs(200, span=1000.0)
        hist = unbiased_histogram(logs, latency_bins(), n_samples=500,
                                  rng=9, time_range=(0.0, 500.0))
        assert hist.total == 500
