"""Tests for streaming/chunked analysis and the aggregate exchange."""

import numpy as np
import pytest

from repro.errors import ConfigError, EmptyDataError, InsufficientDataError, SchemaError
from repro.core import AutoSens, AutoSensConfig
from repro.core.aggregate import curve_from_counts, load_counts, save_counts
from repro.core.alpha import slot_time_coverage, slotted_counts
from repro.core.streaming import (
    StreamingAutoSens,
    iter_chunks_by_day,
    merge_slotted_counts,
)
from repro.stats.histogram import latency_bins
from repro.telemetry import LogStore


@pytest.fixture(scope="module")
def sliced_logs(owa_result):
    return owa_result.logs.where(action="SelectMail", user_class="business")


@pytest.fixture(scope="module")
def config():
    return AutoSensConfig(seed=3)


class TestChunking:
    def test_chunks_partition_rows(self, sliced_logs):
        chunks = list(iter_chunks_by_day(sliced_logs, days_per_chunk=1.0))
        assert sum(len(c) for c in chunks) == len(sliced_logs)
        assert len(chunks) >= 4

    def test_chunks_ordered_disjoint(self, sliced_logs):
        chunks = list(iter_chunks_by_day(sliced_logs, days_per_chunk=1.0))
        for a, b in zip(chunks, chunks[1:]):
            assert a.times.max() < b.times.min() + 86400.0

    def test_bad_width(self, sliced_logs):
        with pytest.raises(ConfigError):
            list(iter_chunks_by_day(sliced_logs, days_per_chunk=0.0))

    def test_empty_logs_no_chunks(self):
        assert list(iter_chunks_by_day(LogStore.from_records([]))) == []


class TestSlotTimeCoverage:
    def test_full_day_equal_hours(self):
        seconds = slot_time_coverage(0.0, 86400.0, "hour-of-day",
                                     np.arange(24))
        assert np.allclose(seconds, 3600.0)

    def test_partial_window(self):
        seconds = slot_time_coverage(0.0, 7200.0, "hour-of-day",
                                     np.arange(24))
        assert seconds[0] == 3600.0
        assert seconds[1] == 3600.0
        assert seconds[2:].sum() == 0.0

    def test_empty_window(self):
        seconds = slot_time_coverage(10.0, 10.0, "hour-of-day", np.arange(24))
        assert seconds.sum() == 0.0


class TestMerge:
    def test_merge_identity(self, sliced_logs, config):
        counts = slotted_counts(sliced_logs, config.bins(), rng=1)
        merged = merge_slotted_counts([counts])
        assert np.allclose(merged.biased_counts, counts.biased_counts)
        assert np.allclose(merged.time_fractions, counts.time_fractions)

    def test_merge_adds_biased_counts(self, sliced_logs, config):
        counts = slotted_counts(sliced_logs, config.bins(), rng=1)
        merged = merge_slotted_counts([counts, counts])
        assert np.allclose(merged.biased_counts, 2 * counts.biased_counts)

    def test_merge_rejects_mixed_schemes(self, sliced_logs, config):
        a = slotted_counts(sliced_logs, config.bins(), scheme="hour-of-day", rng=1)
        b = slotted_counts(sliced_logs, config.bins(), scheme="period", rng=2)
        with pytest.raises(ConfigError):
            merge_slotted_counts([a, b])

    def test_merge_empty(self):
        with pytest.raises(EmptyDataError):
            merge_slotted_counts([])


class TestStreamingAutoSens:
    def test_matches_batch(self, owa_result, sliced_logs, config):
        batch = AutoSens(config).preference_curve(
            owa_result.logs, action="SelectMail", user_class="business")
        stream = StreamingAutoSens(AutoSensConfig(seed=3))
        for chunk in iter_chunks_by_day(sliced_logs, days_per_chunk=1.0):
            stream.consume(chunk.successful())
        curve = stream.preference_curve()
        # Both sides are Monte Carlo estimates of the same curve (the
        # streaming side draws per chunk), so the bound is sampling noise,
        # not a correctness threshold.
        for probe in (500.0, 900.0):
            assert abs(float(curve.at(probe)) - float(batch.at(probe))) < 0.08

    def test_n_rows_tracks(self, sliced_logs):
        stream = StreamingAutoSens(AutoSensConfig(seed=3))
        stream.consume(sliced_logs.successful())
        assert stream.n_rows == int(sliced_logs.success.sum())

    def test_empty_chunk_ignored(self, sliced_logs):
        stream = StreamingAutoSens(AutoSensConfig(seed=3))
        stream.consume(LogStore.from_records([]))
        assert stream.n_rows == 0

    def test_too_few_rows(self):
        stream = StreamingAutoSens(AutoSensConfig(seed=3, min_actions=10**9))
        with pytest.raises(InsufficientDataError):
            stream.preference_curve()

    def test_no_chunks(self):
        with pytest.raises(EmptyDataError):
            StreamingAutoSens().merged_counts()

    def test_metadata(self, sliced_logs):
        stream = StreamingAutoSens(AutoSensConfig(seed=3))
        for chunk in iter_chunks_by_day(sliced_logs, days_per_chunk=2.0):
            stream.consume(chunk.successful(), description="demo")
        curve = stream.preference_curve()
        assert curve.metadata["chunks"] >= 2
        assert curve.slice_description == "demo"


class TestAggregateExchange:
    def test_round_trip(self, sliced_logs, config, tmp_path):
        counts = slotted_counts(sliced_logs, config.bins(), rng=1)
        path = tmp_path / "counts.json"
        save_counts(counts, path)
        clone = load_counts(path)
        assert clone.scheme == counts.scheme
        assert clone.bins == counts.bins
        assert np.allclose(clone.biased_counts, counts.biased_counts)
        assert np.allclose(clone.time_fractions, counts.time_fractions)
        assert np.allclose(clone.slot_seconds, counts.slot_seconds)

    def test_curve_from_counts_matches(self, sliced_logs, config, tmp_path):
        counts = slotted_counts(
            sliced_logs, config.bins(),
            n_unbiased_samples=3 * len(sliced_logs), rng=1)
        path = tmp_path / "counts.json"
        save_counts(counts, path)
        a = curve_from_counts(counts, config)
        b = curve_from_counts(load_counts(path), config)
        assert np.allclose(a.nlp, b.nlp, equal_nan=True)
        assert a.metadata["from_aggregates"] is True

    def test_no_user_data_in_file(self, sliced_logs, config, tmp_path):
        """The exported file must contain no GUIDs or raw timestamps."""
        counts = slotted_counts(sliced_logs, config.bins(), rng=1)
        path = tmp_path / "counts.json"
        save_counts(counts, path)
        text = path.read_text()
        for guid in sliced_logs.user_vocab[:20]:
            if guid:
                assert guid not in text

    def test_bin_grid_mismatch(self, sliced_logs, config):
        counts = slotted_counts(sliced_logs, latency_bins(2000.0, 10.0), rng=1)
        with pytest.raises(ConfigError):
            curve_from_counts(counts, config)

    def test_malformed_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(SchemaError):
            load_counts(path)
        path.write_text('{"format_version": 99}')
        with pytest.raises(SchemaError):
            load_counts(path)
