"""Ablation E: Monte Carlo sampling vs deterministic Voronoi weighting.

The paper estimates U by repeated random time draws. Its infinite-draw
limit weights each sample by its 1-D Voronoi cell — deterministic, exact in
expectation, and cheaper. This bench quantifies all three claims: accuracy
against ground truth, run-to-run variance, and wall-clock time.
"""

import time

import numpy as np

from repro.core import AutoSens, AutoSensConfig, compare_to_truth
from repro.viz import format_table
from repro.workload import owa_scenario
from repro.workload.preference import paper_curve


def test_voronoi_ablation(benchmark):
    def run():
        result = owa_scenario(seed=11, duration_days=8.0, n_users=450,
                              candidates_per_user_day=150.0).generate()
        logs = result.logs
        truth = paper_curve("SelectMail", "business")
        out = {}
        for estimator in ("sampling", "voronoi"):
            t0 = time.perf_counter()
            values = []
            for seed in (1, 2, 3, 4):
                engine = AutoSens(AutoSensConfig(
                    seed=seed, unbiased_estimator=estimator))
                curve = engine.preference_curve(
                    logs, action="SelectMail", user_class="business")
                values.append(float(curve.at(1000.0)))
            elapsed = (time.perf_counter() - t0) / 4.0
            report = compare_to_truth(
                curve, lambda lat: truth.normalized(lat),
                anchor_latencies=(500.0, 1000.0))
            out[estimator] = {
                "mean_at_1000": float(np.mean(values)),
                "seed_spread": float(np.max(values) - np.min(values)),
                "anchor_error": report.mean_abs_error,
                "seconds": elapsed,
            }
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print("Ablation E: unbiased estimator variant")
    rows = []
    for estimator, stats in results.items():
        rows.append([estimator, stats["mean_at_1000"], stats["seed_spread"],
                     stats["anchor_error"], stats["seconds"]])
    print(format_table(
        ["estimator", "NLP(1000) mean", "cross-seed spread",
         "mean anchor error", "sec/curve"], rows,
    ))

    assert results["voronoi"]["seed_spread"] < 1e-12  # fully deterministic
    assert results["voronoi"]["anchor_error"] <= results["sampling"]["anchor_error"] + 0.02
    assert results["voronoi"]["seconds"] <= results["sampling"]["seconds"]
