"""Benchmark: regenerate the paper's Figure 9 (see repro.analysis)."""


def test_fig9(run_paper_experiment):
    run_paper_experiment("fig9")
