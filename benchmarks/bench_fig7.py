"""Benchmark: regenerate the paper's Figure 7 (see repro.analysis)."""


def test_fig7(run_paper_experiment):
    run_paper_experiment("fig7")
