"""Benchmark: regenerate the paper's Figure 2 (see repro.analysis)."""


def test_fig2(run_paper_experiment):
    run_paper_experiment("fig2")
