"""Benchmark: regenerate the paper's Figure 8 (see repro.analysis)."""


def test_fig8(run_paper_experiment):
    run_paper_experiment("fig8")
