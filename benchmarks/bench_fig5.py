"""Benchmark: regenerate the paper's Figure 5 (see repro.analysis)."""


def test_fig5(run_paper_experiment):
    run_paper_experiment("fig5")
