"""Practical bench: how much telemetry does AutoSens need?

Sweeps the observation window from one day to two weeks (fixed population
and rates) and reports the SelectMail anchor error and usable latency
range at each size. The answer guides deployments: with this workload
shape, mid-range anchors stabilize within a few hundred thousand actions,
while the 1.5 s tail needs the larger windows.
"""

import numpy as np

from repro.core import AutoSens, AutoSensConfig, compare_to_truth
from repro.errors import InsufficientDataError
from repro.viz import format_table
from repro.workload import owa_scenario
from repro.workload.preference import paper_curve

DAYS = (1.0, 2.0, 4.0, 8.0, 14.0)


def test_data_requirements(benchmark):
    def run():
        truth = paper_curve("SelectMail", "business")
        rows = []
        for days in DAYS:
            result = owa_scenario(
                seed=11, duration_days=days, n_users=400,
                candidates_per_user_day=120.0,
            ).generate()
            logs = result.logs.where(action="SelectMail",
                                     user_class="business")
            engine = AutoSens(AutoSensConfig(seed=3))
            try:
                curve = engine.preference_curve(result.logs,
                                                action="SelectMail",
                                                user_class="business")
                report = compare_to_truth(
                    curve, lambda lat: truth.normalized(lat),
                    anchor_latencies=(500.0, 1000.0))
                error = report.mean_abs_error
                hi = curve.valid_range()[1]
            except InsufficientDataError:
                error, hi = float("nan"), float("nan")
            rows.append([f"{days:.0f}d", len(logs), error, hi])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print("Data requirements: anchor error vs observation window")
    print(format_table(
        ["window", "actions in slice", "mean anchor error (500/1000 ms)",
         "usable range up to (ms)"], rows,
    ))

    # More data must not make things worse on the mid anchors...
    errors = [r[2] for r in rows if not np.isnan(r[2])]
    assert errors[-1] <= errors[0] + 0.02
    # ...and the two-week window should be solidly accurate.
    assert errors[-1] < 0.07
    # The usable range should grow (or hold) with the window.
    ranges = [r[3] for r in rows if not np.isnan(r[3])]
    assert ranges[-1] >= ranges[0]
