"""Extension bench: per-region (multi-timezone) analysis."""


def test_regions(run_paper_experiment):
    run_paper_experiment("regions")
