"""Ablation C: estimator fidelity knobs.

Sweeps (a) the number of unbiased random-time draws and (b) the
Savitzky-Golay smoothing window, measuring the recovered SelectMail curve
against ground truth at the paper's anchors. Shows why the defaults
(3x oversample, window 101) are reasonable: fewer draws adds variance,
a much wider window adds shape bias.
"""

import numpy as np

from repro.core import AutoSens, AutoSensConfig, compare_to_truth
from repro.viz import format_table
from repro.workload import owa_scenario
from repro.workload.preference import paper_curve

ANCHORS = (500.0, 1000.0)


def _recovery_error(logs, oversample: float, window: int) -> float:
    engine = AutoSens(AutoSensConfig(
        seed=3, unbiased_oversample=oversample, smoothing_window=window,
    ))
    curve = engine.preference_curve(logs, action="SelectMail",
                                    user_class="business")
    truth = paper_curve("SelectMail", "business")
    report = compare_to_truth(curve, lambda lat: truth.normalized(lat),
                              anchor_latencies=ANCHORS)
    return report.mean_abs_error


def test_estimator_ablation(benchmark):
    def run():
        result = owa_scenario(seed=11, duration_days=8.0, n_users=450,
                              candidates_per_user_day=150.0).generate()
        logs = result.logs
        oversweep = {o: _recovery_error(logs, o, 101)
                     for o in (0.5, 1.0, 3.0, 6.0)}
        windowsweep = {w: _recovery_error(logs, 3.0, w)
                       for w in (21, 51, 101, 201, 401)}
        return oversweep, windowsweep

    oversweep, windowsweep = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print("Ablation C1: unbiased draw oversampling (window fixed at 101)")
    print(format_table(
        ["oversample", "mean abs anchor error"],
        [[f"{o}x", err] for o, err in oversweep.items()],
    ))
    print("Ablation C2: smoothing window (oversample fixed at 3x)")
    print(format_table(
        ["window (10 ms bins)", "mean abs anchor error"],
        [[w, err] for w, err in windowsweep.items()],
    ))

    # Every configuration keeps mid-anchor error moderate...
    assert all(err < 0.15 for err in oversweep.values())
    # ...and the paper's defaults are within 2x of the best configuration.
    best = min(min(oversweep.values()), min(windowsweep.values()))
    assert oversweep[3.0] <= max(2.0 * best, 0.06)
    assert windowsweep[101] <= max(2.5 * best, 0.06)
