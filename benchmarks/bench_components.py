"""Component micro-benchmarks: throughput of the pipeline's hot paths.

Unlike the per-figure benches (timed once end-to-end), these use
pytest-benchmark's repeated rounds to give stable per-component timings:
telemetry generation, the unbiased estimator, per-slot counting, SG
smoothing, and JSONL IO.
"""

import numpy as np
import pytest

from repro.core.alpha import slotted_counts
from repro.core.unbiased import draw_unbiased_samples
from repro.stats.histogram import latency_bins
from repro.stats.savgol import savgol_smooth
from repro.telemetry import read_jsonl, write_jsonl
from repro.workload import owa_scenario


@pytest.fixture(scope="module")
def medium_result():
    return owa_scenario(seed=7, duration_days=3.0, n_users=250,
                        candidates_per_user_day=120.0).generate()


def test_generator_throughput(benchmark):
    scenario = owa_scenario(seed=7, duration_days=1.0, n_users=150,
                            candidates_per_user_day=100.0)
    result = benchmark(scenario.generate)
    assert len(result.logs) > 1000


def test_unbiased_draw_speed(benchmark, medium_result):
    logs = medium_result.logs
    draw = benchmark(
        lambda: draw_unbiased_samples(logs, n_samples=2 * len(logs), rng=1)
    )
    assert draw.selected_indices.size == 2 * len(logs)


def test_slotted_counts_speed(benchmark, medium_result):
    logs = medium_result.logs
    bins = latency_bins()
    counts = benchmark(
        lambda: slotted_counts(logs, bins, rng=2,
                               n_unbiased_samples=2 * len(logs))
    )
    assert counts.biased_counts.sum() > 0


def test_savgol_speed(benchmark):
    rng = np.random.default_rng(3)
    values = rng.normal(size=300)  # one latency grid's worth
    out = benchmark(lambda: savgol_smooth(values, window=101, degree=3))
    assert out.shape == values.shape


def test_savgol_speed_with_nans(benchmark):
    rng = np.random.default_rng(4)
    values = rng.normal(size=300)
    values[250:] = np.nan  # typical sparse tail
    out = benchmark(lambda: savgol_smooth(values, window=101, degree=3))
    assert out.shape == values.shape


def test_jsonl_write_speed(benchmark, medium_result, tmp_path):
    logs = medium_result.logs
    records = logs.to_records()[:20_000]
    path = tmp_path / "bench.jsonl"
    count = benchmark(lambda: write_jsonl(records, path))
    assert count == 20_000


def test_jsonl_read_speed(benchmark, medium_result, tmp_path):
    logs = medium_result.logs
    path = tmp_path / "bench.jsonl"
    write_jsonl(logs.to_records()[:20_000], path)
    store = benchmark(lambda: read_jsonl(path))
    assert len(store) == 20_000


def test_full_curve_speed(benchmark, medium_result):
    from repro.core import AutoSens, AutoSensConfig

    logs = medium_result.logs
    curve = benchmark(
        lambda: AutoSens(AutoSensConfig(seed=5)).preference_curve(
            logs, action="SelectMail")
    )
    assert curve.n_actions > 1000
