"""Benchmark: the Section 3.5 preference-vs-bottleneck analysis, plus the
perf-regression stage suite behind ``BENCH_pipeline.json``."""

import json

from repro.analysis.perf import run_perf_suite


def test_bottleneck(run_paper_experiment):
    run_paper_experiment("bottleneck")


def test_perf_stages(benchmark, output_dir):
    """Time generator → pipeline → sweep at full scale, old vs new.

    Asserts the acceptance criterion of the tensor refactor: the
    time-corrected multi-reference path runs at least 2x faster than the
    per-slot/per-sample reference implementation, while agreeing with it
    numerically. The stage report is exported next to the other benchmark
    artifacts; ``tools/bench_report.py`` maintains the committed
    ``BENCH_pipeline.json`` trajectory.
    """
    report = benchmark.pedantic(
        lambda: run_perf_suite(scale="full", seed=0), rounds=1, iterations=1
    )
    print()
    print(report.render())
    (output_dir / "BENCH_pipeline.json").write_text(
        json.dumps({"schema": 1, "scales": {"full": report.to_dict()}}, indent=2) + "\n"
    )

    corrected = report.stage("corrected_multi_reference")
    assert corrected.speedup is not None and corrected.speedup >= 2.0, (
        f"corrected multi-reference path speedup {corrected.speedup}, expected >= 2x"
    )
    assert corrected.max_abs_diff is not None and corrected.max_abs_diff < 1e-9
    counts = report.stage("slotted_counts")
    assert counts.max_abs_diff == 0.0, "tensorized counts diverged from the legacy loops"
