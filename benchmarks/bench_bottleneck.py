"""Benchmark: the Section 3.5 preference-vs-bottleneck analysis, plus the
perf-regression stage suite behind ``BENCH_pipeline.json``."""

import json

from repro.analysis.perf import run_perf_suite


def test_bottleneck(run_paper_experiment):
    run_paper_experiment("bottleneck")


def test_perf_stages(benchmark, output_dir):
    """Time generator → pipeline → sweep at full scale, old vs new.

    Asserts the acceptance criteria of the perf work: the time-corrected
    multi-reference path runs at least 2x faster than the per-slot /
    per-sample reference, and the single-draw sampler beats the legacy
    12-batch redraw loop by at least 5x. The deterministic halves still
    agree bitwise (checked inside the suite; biased_diff in the stage
    detail); the Monte Carlo time fractions and the curves built from them
    use a different draw schedule, so they are held to statistical bounds
    (~4x the observed full-scale noise). The stage report is exported next
    to the other benchmark artifacts; ``tools/bench_report.py`` maintains
    the committed ``BENCH_pipeline.json`` trajectory.
    """
    report = benchmark.pedantic(
        lambda: run_perf_suite(scale="full", seed=0), rounds=1, iterations=1
    )
    print()
    print(report.render())
    (output_dir / "BENCH_pipeline.json").write_text(
        json.dumps({"schema": 1, "scales": {"full": report.to_dict()}}, indent=2) + "\n"
    )

    corrected = report.stage("corrected_multi_reference")
    assert corrected.speedup is not None and corrected.speedup >= 2.0, (
        f"corrected multi-reference path speedup {corrected.speedup}, expected >= 2x"
    )
    assert corrected.max_abs_diff is not None and corrected.max_abs_diff < 0.05, (
        "corrected curves drifted beyond Monte Carlo noise from the legacy path"
    )
    counts = report.stage("slotted_counts")
    assert counts.speedup is not None and counts.speedup >= 5.0, (
        f"single-draw sampler speedup {counts.speedup}, expected >= 5x over "
        "the legacy redraw loop"
    )
    assert counts.max_abs_diff is not None and counts.max_abs_diff < 0.01, (
        "unbiased time fractions drifted beyond Monte Carlo noise"
    )
    assert "biased_diff=0 (bitwise)" in counts.detail, (
        "deterministic biased counts diverged from the legacy loops"
    )
    sharded = report.stage("slotted_counts_sharded")
    assert sharded.max_abs_diff is not None and sharded.max_abs_diff < 0.02, (
        "sharded draw drifted beyond stratified Monte Carlo noise"
    )
