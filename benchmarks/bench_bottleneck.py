"""Benchmark: the Section 3.5 preference-vs-bottleneck analysis."""


def test_bottleneck(run_paper_experiment):
    run_paper_experiment("bottleneck")
