"""Extension bench: passive what-if predictions vs a simulated A/B test.

The paper's pitch is replacing interventional latency studies (Amazon,
Google, Akamai) with passive inference. On the simulator we can close the
loop: predict the activity change of a 20 % latency improvement from the
measured NLP curve alone, then actually run the improved service (same
seed, same candidate stream) and compare.
"""

from dataclasses import replace

from repro.core import AutoSens, AutoSensConfig, predict_activity_impact, scale
from repro.viz import format_table
from repro.workload import TelemetryGenerator, owa_scenario

SPEEDUPS = (0.9, 0.8, 0.67)


def test_whatif_vs_simulated_ab(benchmark):
    def run():
        scenario = owa_scenario(seed=11, duration_days=8.0, n_users=450,
                                candidates_per_user_day=150.0)
        baseline = scenario.generate()
        engine = AutoSens(AutoSensConfig(seed=3))
        curve = engine.preference_curve(baseline.logs, action="SelectMail",
                                        user_class="business")
        n_baseline = len(baseline.logs.where(action="SelectMail",
                                             user_class="business"))
        rows = []
        for factor in SPEEDUPS:
            predicted = predict_activity_impact(curve, scale(factor))
            faster_config = replace(
                scenario.config,
                latency=replace(scenario.config.latency,
                                base_ms=scenario.config.latency.base_ms * factor),
            )
            faster = TelemetryGenerator(
                config=faster_config,
                ground_truth=scenario.ground_truth,
                action_mix=scenario.action_mix,
                activity_model=scenario.activity_model,
            ).generate(rng=11)
            n_faster = len(faster.logs.where(action="SelectMail",
                                             user_class="business"))
            simulated = (n_faster / n_baseline - 1.0) * 100.0
            rows.append([f"x{factor:g}", predicted.activity_change_pct,
                         simulated,
                         predicted.activity_change_pct - simulated])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print("What-if predictions vs simulated interventions (SelectMail, business)")
    print(format_table(
        ["latency scale", "predicted Δactivity %", "simulated Δactivity %",
         "prediction error pp"], rows,
    ))

    for row in rows:
        predicted, simulated = row[1], row[2]
        # prediction and intervention must agree in sign...
        assert predicted * simulated > 0, row
        # ...and within a few percentage points
        assert abs(predicted - simulated) < 3.0, row
