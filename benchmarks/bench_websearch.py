"""Extension bench: AutoSens on a non-sticky (web-search) service.

Paper Section 4 argues the method applies beyond sticky services like
email. Here the ground truth makes search users far less tolerant, and the
pipeline must recover that contrast against the email baseline.
"""

import numpy as np

from repro.core import AutoSens, AutoSensConfig, compare_to_truth
from repro.viz import format_table
from repro.workload import owa_scenario, websearch_scenario


def test_websearch_extension(benchmark):
    def run():
        search = websearch_scenario(seed=99, duration_days=6.0, n_users=400,
                                    candidates_per_user_day=140.0)
        search_result = search.generate()
        email_result = owa_scenario(seed=99, duration_days=6.0, n_users=400,
                                    candidates_per_user_day=140.0).generate()
        engine = AutoSens(AutoSensConfig(seed=9))
        query = engine.preference_curve(search_result.logs, action="Query")
        select = engine.preference_curve(email_result.logs,
                                         action="SelectMail",
                                         user_class="business")
        truth = search.ground_truth.curve_for("Query", "consumer")
        report = compare_to_truth(query, lambda lat: truth.normalized(lat),
                                  anchor_latencies=(500.0, 1000.0))
        return query, select, report

    query, select, report = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print("Extension: non-sticky web-search service vs sticky email")
    rows = []
    for probe in (500.0, 1000.0):
        rows.append([f"{probe:.0f} ms",
                     float(query.at(probe)), float(select.at(probe))])
    print(format_table(["latency", "search Query NLP", "email SelectMail NLP"],
                       rows))
    print("Query recovery: " + "; ".join(
        f"{a.latency_ms:.0f}ms measured {a.measured:.3f} vs truth {a.expected:.3f}"
        for a in report.anchors))

    # Search users must be clearly less tolerant than email users.
    assert float(query.at(1000.0)) < float(select.at(1000.0)) - 0.05
    assert report.max_abs_error < 0.12
