"""Ablation A: which latency does the preference act on?

The generator supports two causal channels (paper Section 3.5):

- ``realized`` — preference acts on the realized per-request latency
  (the mechanical bottleneck channel);
- ``level``   — preference acts on the predictable congestion level only
  (the behavioural channel; per-request jitter is invisible to the user).

AutoSens plots the measured NLP against *realized* latency, so under the
``level`` channel the measured curve is the true curve smeared by the
jitter distribution — slightly flatter, same shape. This bench quantifies
the difference.
"""

import numpy as np

from repro.core import AutoSens, AutoSensConfig
from repro.viz import format_table
from repro.workload import owa_scenario
from repro.workload.preference import paper_curve

PROBES = (500.0, 1000.0, 1500.0)


def _measure(response_mode: str) -> dict:
    scenario = owa_scenario(seed=11, duration_days=8.0, n_users=450,
                            candidates_per_user_day=150.0,
                            response_mode=response_mode)
    result = scenario.generate()
    engine = AutoSens(AutoSensConfig(seed=3))
    curve = engine.preference_curve(result.logs, action="SelectMail",
                                    user_class="business")
    return {probe: float(curve.at(probe)) for probe in PROBES}


def test_response_mode_ablation(benchmark):
    results = benchmark.pedantic(
        lambda: {mode: _measure(mode) for mode in ("realized", "level")},
        rounds=1, iterations=1,
    )
    truth = paper_curve("SelectMail", "business")
    rows = []
    for probe in PROBES:
        rows.append([
            f"{probe:.0f} ms",
            float(truth.normalized(np.array([probe]))[0]),
            results["realized"][probe],
            results["level"][probe],
        ])
    print()
    print("Ablation A: preference response channel")
    print(format_table(
        ["latency", "ground truth", "realized mode", "level mode"], rows,
    ))
    # Both channels must produce a clearly declining curve.
    for mode in ("realized", "level"):
        assert results[mode][1000.0] < results[mode][500.0]
        assert results[mode][1000.0] < 0.92
    # The realized channel should track the truth at least as closely at
    # the mid anchors (level mode is jitter-smeared).
    truth_1000 = float(truth.normalized(np.array([1000.0]))[0])
    assert (abs(results["realized"][1000.0] - truth_1000)
            <= abs(results["level"][1000.0] - truth_1000) + 0.05)
