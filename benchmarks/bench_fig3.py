"""Benchmark: regenerate the paper's Figure 3 (see repro.analysis)."""


def test_fig3(run_paper_experiment):
    run_paper_experiment("fig3")
