"""Extension bench: session-level latency sensitivity (paper Section 2.1 intuition)."""


def test_sessions(run_paper_experiment):
    run_paper_experiment("sessions")
