"""Benchmark: regenerate the paper's Table 1 worked example (exact)."""


def test_table1(run_paper_experiment):
    outcome = run_paper_experiment("table1")
    assert len(outcome.checks) == 9
