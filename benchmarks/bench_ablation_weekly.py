"""Ablation D: weekly seasonality and the slot scheme.

The paper corrects the *daily* confounder with 1-hour slots pooled by
hour of day. A two-month trace (like the paper's) also has a *weekly*
cycle: weekends are quieter and faster for business users. Pooling
Saturdays with Tuesdays into one hour-of-day slot mis-estimates alpha and
flattens the inferred preference; 168 hour-of-week slots repair it.
"""

import numpy as np

from repro.core import AutoSens, AutoSensConfig
from repro.viz import format_table
from repro.workload import weekly_scenario
from repro.workload.preference import paper_curve

PROBES = (500.0, 1000.0)


def test_weekly_slot_scheme_ablation(benchmark):
    def run():
        result = weekly_scenario(seed=55).generate()
        out = {}
        for scheme in ("hour-of-day", "hour-of-week"):
            engine = AutoSens(AutoSensConfig(seed=3, slot_scheme=scheme))
            curve = engine.preference_curve(result.logs, action="SelectMail",
                                            user_class="business")
            out[scheme] = {probe: float(curve.at(probe)) for probe in PROBES}
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    truth = paper_curve("SelectMail", "business")

    print()
    print("Ablation D: slot scheme under a weekly activity/latency cycle")
    rows = []
    for probe in PROBES:
        rows.append([
            f"{probe:.0f} ms",
            float(truth.normalized(np.array([probe]))[0]),
            results["hour-of-day"][probe],
            results["hour-of-week"][probe],
        ])
    print(format_table(
        ["latency", "ground truth", "hour-of-day slots", "hour-of-week slots"],
        rows,
    ))

    for probe in PROBES:
        expected = float(truth.normalized(np.array([probe]))[0])
        day_err = abs(results["hour-of-day"][probe] - expected)
        week_err = abs(results["hour-of-week"][probe] - expected)
        # hour-of-week must cut the residual confounding substantially
        assert week_err < day_err
        assert week_err < 0.06
