"""Ablation B: how load-bearing is the time-confounder correction?

Runs the same telemetry through the pipeline with the alpha correction on
and off, for (a) the standard OWA workload and (b) the null workload whose
users are latency-indifferent. Expected:

- on the null workload, the corrected curve is flat (truth) while the
  uncorrected curve dips at low latency — the Table 1 inversion;
- on the OWA workload, the uncorrected curve understates sensitivity.
"""

import numpy as np

from repro.core import AutoSens, AutoSensConfig
from repro.viz import format_table
from repro.workload import flat_preference_scenario, owa_scenario

PROBES = (150.0, 500.0, 1000.0)


def _curves(logs):
    out = {}
    for correction in (True, False):
        engine = AutoSens(AutoSensConfig(seed=3, time_correction=correction))
        curve = engine.preference_curve(logs, action="SelectMail",
                                        user_class="business")
        out[correction] = {probe: float(curve.at(probe)) for probe in PROBES}
    return out


def test_alpha_correction_ablation(benchmark):
    def run():
        owa = owa_scenario(seed=11, duration_days=8.0, n_users=450,
                           candidates_per_user_day=150.0).generate()
        null = flat_preference_scenario(seed=17, duration_days=8.0,
                                        n_users=450,
                                        candidates_per_user_day=150.0).generate()
        return _curves(owa.logs), _curves(null.logs)

    owa_curves, null_curves = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print("Ablation B: time-confounder correction on/off")
    rows = []
    for probe in PROBES:
        rows.append([
            f"{probe:.0f} ms",
            owa_curves[True][probe], owa_curves[False][probe],
            null_curves[True][probe], null_curves[False][probe],
        ])
    print(format_table(
        ["latency", "OWA corrected", "OWA naive",
         "null corrected", "null naive"], rows,
    ))

    # Null workload: corrected must be flat; naive dips at low latency.
    assert abs(null_curves[True][150.0] - 1.0) < 0.12
    assert abs(null_curves[True][1000.0] - 1.0) < 0.12
    assert null_curves[False][150.0] < null_curves[True][150.0] - 0.05

    # OWA workload: the naive estimate understates low-latency preference.
    assert owa_curves[False][150.0] < owa_curves[True][150.0]
