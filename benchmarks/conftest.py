"""Benchmark harness helpers.

Each ``bench_*`` module regenerates one paper artifact (figure or table) at
full scale, times it with pytest-benchmark, prints the paper-vs-measured
report, asserts the qualitative checks, and exports the underlying series
to ``benchmarks/output/``.

Run with:  pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import warnings
from pathlib import Path

import pytest

from repro.analysis import FULL, run_experiment
from repro.viz import save_series_csv

OUTPUT_DIR = Path(__file__).parent / "output"

warnings.filterwarnings("ignore")


@pytest.fixture(scope="session")
def output_dir() -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture()
def run_paper_experiment(benchmark, output_dir):
    """Time one experiment end-to-end, report it, and assert its checks."""

    def runner(experiment_id: str, seed: int | None = None):
        outcome = benchmark.pedantic(
            lambda: run_experiment(experiment_id, seed=seed, scale=FULL),
            rounds=1, iterations=1,
        )
        print()
        print(outcome.render(include_plots=True))
        for name, series in outcome.series.items():
            safe = name.replace("/", "-").replace(" ", "_")
            try:
                save_series_csv(series, output_dir / f"{safe}.csv")
            except Exception:
                pass  # non-tabular series (mixed lengths) are skipped
        assert outcome.passed, "qualitative checks failed:\n" + "\n".join(
            f"  [FAIL] {c.name}: {c.detail}" for c in outcome.checks if not c.passed
        )
        return outcome

    return runner
