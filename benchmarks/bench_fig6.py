"""Benchmark: regenerate the paper's Figure 6 (see repro.analysis)."""


def test_fig6(run_paper_experiment):
    run_paper_experiment("fig6")
