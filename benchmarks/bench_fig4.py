"""Benchmark: regenerate the paper's Figure 4 (see repro.analysis)."""


def test_fig4(run_paper_experiment):
    run_paper_experiment("fig4")
