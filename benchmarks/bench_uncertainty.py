"""Extension bench: bootstrap confidence bands and curve separation.

The paper's Figure 5 claims business users are more latency-sensitive than
consumers. With day-block bootstrap bands we can ask whether that gap is
resolved beyond resampling noise at reproduction scale.
"""

from repro.core import AutoSensConfig
from repro.core.uncertainty import nlp_confidence_band
from repro.viz import format_table
from repro.workload import owa_scenario


def test_confidence_bands(benchmark):
    def run():
        result = owa_scenario(seed=11, duration_days=8.0, n_users=450,
                              candidates_per_user_day=150.0).generate()
        config = AutoSensConfig(seed=3)
        bands = {}
        for user_class in ("business", "consumer"):
            bands[user_class] = nlp_confidence_band(
                result.logs, config, n_resamples=16, rng=5,
                action="SelectMail", user_class=user_class,
            )
        return bands

    bands = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print("Day-block bootstrap bands (90%), SelectMail")
    rows = []
    for user_class, band in bands.items():
        for probe in (500.0, 1000.0):
            low, high = band.band_at(probe)
            rows.append([user_class, f"{probe:.0f} ms",
                         float(band.point.at(probe)), low, high])
    print(format_table(["class", "latency", "point", "band low", "band high"],
                       rows))

    business = bands["business"]
    consumer = bands["consumer"]
    separated = business.separated_from(consumer, 1000.0)
    print(f"business/consumer bands separated at 1000 ms: {separated}")

    for band in bands.values():
        assert band.halfwidth_at(500.0) < 0.1
    # The class gap should at least point the right way, bands or not.
    assert float(business.point.at(1000.0)) < float(consumer.point.at(1000.0))
