"""Benchmark: regenerate the paper's Figure 1 (see repro.analysis)."""


def test_fig1(run_paper_experiment):
    run_paper_experiment("fig1")
